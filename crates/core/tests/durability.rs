//! Server durability integration tests: write-ahead commit log,
//! crash-restart recovery, scripted crash points, torn-tail truncation,
//! held-buffer drop accounting, checkpoint compaction, and the warm
//! `import_store` regression.

use std::cell::RefCell;
use std::rc::Rc;

use rover_core::{
    Client, ClientConfig, CrashPoint, ExportPayload, Guarantees, OpStatus, Priority,
    ReexecuteResolver, RoverObject, Server, ServerConfig, ServerEvent, Urn,
};
use rover_log::{FaultKind, FaultStore, FileStore, MemStore};
use rover_net::{LinkSpec, Net};
use rover_sim::{Sim, SimDuration};
use rover_wire::{
    Envelope, HostId, QrpcReply, QrpcRequest, RequestId, RoverOp, SessionId, Version, Wire,
};

const CLIENT: HostId = HostId(1);
const SERVER: HostId = HostId(2);

fn urn(p: &str) -> Urn {
    Urn::parse(&format!("urn:rover:t/{p}")).unwrap()
}

fn counter(p: &str) -> RoverObject {
    RoverObject::new(urn(p), "counter")
        .with_code("proc add {k} {rover::set n [expr {[rover::get n 0] + $k}]}")
        .with_field("n", "0")
}

struct Rig {
    sim: Sim,
    net: Net,
    server: rover_core::ServerRef,
    client: rover_core::ClientRef,
    session: rover_wire::SessionId,
}

/// Client + server over a healthy Ethernet link with a counter object
/// at the server; the client probes aggressively so crash tests
/// converge fast.
fn rig(seed: u64, scfg: ServerConfig) -> Rig {
    let mut sim = Sim::new(seed);
    let net = Net::new();
    let link = net.add_link(LinkSpec::ETHERNET_10M, CLIENT, SERVER);
    let server = Server::new(&net, scfg);
    server.borrow_mut().add_route(CLIENT, link);
    server
        .borrow_mut()
        .register_resolver("counter", Box::new(ReexecuteResolver));
    server.borrow_mut().put_object(counter("c"));
    let mut cfg = ClientConfig::thinkpad(CLIENT, SERVER);
    cfg.rto = SimDuration::from_secs(5);
    cfg.rto_max = SimDuration::from_secs(40);
    let client = Client::new(&mut sim, &net, cfg, vec![link]);
    let session = Client::create_session(&client, Guarantees::ALL, true);
    Rig {
        sim,
        net,
        server,
        client,
        session,
    }
}

fn attach_mem_wal(r: &mut Rig) {
    Server::attach_wal(&r.server, &mut r.sim, Box::new(MemStore::new())).unwrap();
}

fn import(r: &mut Rig) {
    let p = Client::import(
        &r.client,
        &mut r.sim,
        &urn("c"),
        r.session,
        Priority::FOREGROUND,
    )
    .unwrap();
    r.sim.run();
    assert_eq!(p.poll().unwrap().status, OpStatus::Ok);
}

fn export_add(r: &mut Rig) -> rover_core::ExportHandle {
    Client::export(
        &r.client,
        &mut r.sim,
        &urn("c"),
        r.session,
        "add",
        &["1"],
        Priority::NORMAL,
    )
    .unwrap()
}

fn server_field_n(r: &Rig) -> String {
    r.server
        .borrow()
        .get_object(&urn("c"))
        .unwrap()
        .field("n")
        .unwrap()
        .to_owned()
}

/// Restart the server automatically a moment after every crash.
fn auto_restart(r: &Rig, delay: SimDuration) {
    let sv = r.server.clone();
    Server::on_event(&r.server, move |sim, ev| {
        if matches!(ev, ServerEvent::Crashed { .. }) {
            let sv = sv.clone();
            sim.schedule_after(delay, move |sim| {
                Server::crash_restart(&sv, sim).unwrap();
            });
        }
    });
}

#[test]
fn wal_attach_writes_initial_checkpoint_and_logs_commits() {
    let mut r = rig(11, ServerConfig::workstation(SERVER));
    attach_mem_wal(&mut r);
    let after_attach = r.server.borrow().wal_device_len();
    assert!(after_attach > 0, "fresh attach writes a checkpoint");
    assert_eq!(r.sim.stats.counter("server.checkpoints"), 1);

    import(&mut r);
    for _ in 0..3 {
        let h = export_add(&mut r);
        r.sim.run();
        assert_eq!(h.committed.poll().unwrap().status, OpStatus::Ok);
    }
    // Every executed request (the import included) was committed to the
    // device before its reply left.
    assert_eq!(r.sim.stats.counter("server.wal_appends"), 4);
    assert!(r.server.borrow().wal_device_len() > after_attach);
    assert!(r.server.borrow().wal_attached());
}

#[test]
fn crash_restart_recovers_objects_ordering_and_dedup() {
    let mut r = rig(12, ServerConfig::workstation(SERVER));
    attach_mem_wal(&mut r);
    import(&mut r);
    for _ in 0..5 {
        let h = export_add(&mut r);
        r.sim.run();
        assert!(h.committed.is_ready());
    }
    let before = r.server.borrow().export_store();

    Server::crash_restart(&r.server, &mut r.sim).unwrap();

    // Recovery rebuilt the exact durable state: same canonical image.
    assert_eq!(r.server.borrow().export_store(), before);
    assert_eq!(server_field_n(&r), "5");
    assert!(r.sim.stats.counter("server.recovered_commits") > 0);
    assert!(!r.server.borrow().is_crashed());

    // And the restarted server keeps serving.
    let h = export_add(&mut r);
    r.sim.run();
    assert_eq!(h.committed.poll().unwrap().status, OpStatus::Ok);
    assert_eq!(server_field_n(&r), "6");
    assert_eq!(r.sim.stats.counter("server.dedup_miss_reexec"), 0);
}

#[test]
fn after_append_crash_replays_reply_from_recovered_dedup() {
    let mut r = rig(13, ServerConfig::workstation(SERVER));
    attach_mem_wal(&mut r);
    import(&mut r);
    auto_restart(&r, SimDuration::from_secs(1));

    // Commit 1 was the import; crash after commit 3's append: the
    // commit is durable but its reply never leaves the host.
    r.server
        .borrow_mut()
        .script_crash(3, CrashPoint::AfterAppend);
    let mut handles = Vec::new();
    for _ in 0..4 {
        handles.push(export_add(&mut r));
        r.sim.run_for(SimDuration::from_millis(200));
    }
    r.sim.run();

    for h in &handles {
        let st = h.committed.poll().unwrap().status;
        assert!(st == OpStatus::Ok || st == OpStatus::Resolved);
    }
    assert_eq!(server_field_n(&r), "4", "every export applied exactly once");
    assert_eq!(r.sim.stats.counter("server.crashes"), 1);
    assert_eq!(
        r.sim.stats.counter("server.dedup_miss_reexec"),
        0,
        "retransmit of the durable commit hit the recovered dedup cache"
    );
    assert!(
        r.sim.stats.counter("server.dedup_replay") >= 1,
        "the lost reply was replayed, not re-executed"
    );
    assert!(r.sim.stats.counter("client.retransmits") >= 1);
}

#[test]
fn before_append_crash_lets_retransmission_execute_freshly() {
    let mut r = rig(14, ServerConfig::workstation(SERVER));
    attach_mem_wal(&mut r);
    import(&mut r);
    auto_restart(&r, SimDuration::from_secs(1));

    r.server
        .borrow_mut()
        .script_crash(3, CrashPoint::BeforeAppend);
    let mut handles = Vec::new();
    for _ in 0..4 {
        handles.push(export_add(&mut r));
        r.sim.run_for(SimDuration::from_millis(200));
    }
    r.sim.run();

    for h in &handles {
        let st = h.committed.poll().unwrap().status;
        assert!(st == OpStatus::Ok || st == OpStatus::Resolved);
    }
    // Nothing was committed or replied for the crashed request, so its
    // retransmission is a clean first execution — still exactly once.
    assert_eq!(server_field_n(&r), "4");
    assert_eq!(r.sim.stats.counter("server.crashes"), 1);
    assert_eq!(r.sim.stats.counter("server.dedup_miss_reexec"), 0);
}

#[test]
fn torn_append_crashes_host_and_recovery_truncates_tail() {
    let mut r = rig(15, ServerConfig::workstation(SERVER));

    // Measure where the device stands after the attach checkpoint and
    // the import's commit, then arm a short write that tears the middle
    // of the first export's commit frame.
    let probe = {
        let mut p = rig(15, ServerConfig::workstation(SERVER));
        attach_mem_wal(&mut p);
        import(&mut p);
        let len = p.server.borrow().wal_device_len();
        len
    };
    let mut store = FaultStore::new(MemStore::new());
    store.push_fault(probe + 30, FaultKind::ShortWrite);
    Server::attach_wal(&r.server, &mut r.sim, Box::new(store)).unwrap();
    auto_restart(&r, SimDuration::from_secs(1));
    import(&mut r);

    let mut handles = Vec::new();
    for _ in 0..3 {
        handles.push(export_add(&mut r));
        r.sim.run_for(SimDuration::from_millis(200));
    }
    r.sim.run();

    for h in &handles {
        assert!(h.committed.is_ready());
    }
    assert_eq!(
        r.sim.stats.counter("server.wal_append_failed"),
        1,
        "the torn flush downed the host"
    );
    assert_eq!(r.sim.stats.counter("server.crashes"), 1);
    assert!(
        r.sim.stats.counter("server.recovery_truncated_tail") > 0,
        "recovery discarded the torn frame"
    );
    assert_eq!(
        server_field_n(&r),
        "3",
        "all exports converged exactly once"
    );
    assert_eq!(r.sim.stats.counter("server.dedup_miss_reexec"), 0);
}

#[test]
fn held_out_of_order_writes_are_dropped_and_counted_on_recovery() {
    let mut r = rig(16, ServerConfig::workstation(SERVER));
    attach_mem_wal(&mut r);

    // Inject an ordered export whose predecessor never arrives: the
    // server holds it. (Raw envelope: the client API always sends in
    // order, so the gap must be crafted at the wire level.)
    let req = QrpcRequest {
        req_id: RequestId(90),
        client: CLIENT,
        session: SessionId(7),
        op: RoverOp::Export {
            method: "add".into(),
        },
        urn: urn("c").as_str().to_owned(),
        base_version: Version(1),
        priority: Priority::NORMAL,
        auth: 0,
        acked_below: 0,
        payload: ExportPayload {
            method: "add".into(),
            args: vec!["1".into()],
            session_seq: 5,
        }
        .to_bytes(),
        read_vector: Vec::new(),
    };
    let link = r.net.up_link_between(CLIENT, SERVER).unwrap();
    r.net
        .send(&mut r.sim, link, Envelope::request(CLIENT, SERVER, &req))
        .unwrap();
    r.sim.run();
    assert_eq!(r.sim.stats.counter("server.held_out_of_order"), 1);

    let events: Rc<RefCell<Vec<ServerEvent>>> = Rc::new(RefCell::new(Vec::new()));
    let sink = events.clone();
    Server::on_event(&r.server, move |_sim, ev| {
        sink.borrow_mut().push(ev.clone())
    });

    Server::crash_restart(&r.server, &mut r.sim).unwrap();

    assert_eq!(
        r.sim.stats.counter("server.held_dropped_on_recovery"),
        1,
        "the held write died with the volatile state — explicitly counted"
    );
    let recovered = events
        .borrow()
        .iter()
        .find_map(|ev| match ev {
            ServerEvent::Recovered { held_dropped, .. } => Some(*held_dropped),
            _ => None,
        })
        .expect("Recovered event emitted");
    assert_eq!(recovered, 1);
    // The counter object itself never executed the held write.
    assert_eq!(server_field_n(&r), "0");
}

#[test]
fn warm_import_store_replaces_state_wholesale() {
    // Build a server with real executed/dedup/ordering state.
    let mut a = rig(17, ServerConfig::workstation(SERVER));
    import(&mut a);
    for _ in 0..3 {
        let h = export_add(&mut a);
        a.sim.run();
        assert!(h.committed.is_ready());
    }
    let snapshot = a.server.borrow().export_store();

    // A *warm* server with different objects and its own at-most-once
    // state imports the snapshot: everything pre-import must be gone.
    let mut b = rig(18, ServerConfig::workstation(SERVER));
    b.server.borrow_mut().put_object(counter("other"));
    import(&mut b);
    for _ in 0..2 {
        let h = export_add(&mut b);
        b.sim.run();
        assert!(h.committed.is_ready());
    }
    assert!(b.server.borrow().object_count() >= 2);

    let loaded = b.server.borrow_mut().import_store(&snapshot).unwrap();
    assert_eq!(loaded, 1);
    assert_eq!(
        b.server.borrow().object_count(),
        1,
        "pre-import objects cleared, not merged"
    );
    assert!(b.server.borrow().get_object(&urn("other")).is_none());
    assert_eq!(server_field_n(&b), "3");
    // Canonical round-trip: the importing server's state is now exactly
    // the snapshot — no stale dedup/floor/ordering entries survive.
    assert_eq!(b.server.borrow().export_store(), snapshot);
}

#[test]
fn checkpoints_compact_the_device() {
    let run = |checkpoint_every: usize| {
        let mut scfg = ServerConfig::workstation(SERVER);
        scfg.checkpoint_every = checkpoint_every;
        let mut r = rig(19, scfg);
        attach_mem_wal(&mut r);
        import(&mut r);
        for _ in 0..24 {
            let h = export_add(&mut r);
            r.sim.run();
            assert!(h.committed.is_ready());
        }
        let out = (
            r.server.borrow().wal_device_len(),
            r.sim.stats.counter("server.checkpoints"),
        );
        out
    };
    let (unbounded, ckpt_off) = run(0);
    let (bounded, ckpt_on) = run(4);
    assert_eq!(ckpt_off, 1, "only the attach checkpoint");
    assert!(ckpt_on > 1, "periodic checkpoints fired");
    assert!(
        bounded < unbounded,
        "compaction keeps the device smaller: {bounded} vs {unbounded}"
    );
}

#[test]
fn recover_constructor_rebuilds_server_from_file_device() {
    let dir = std::env::temp_dir().join(format!("rover-durability-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("server.wal");

    let mut r = rig(20, ServerConfig::workstation(SERVER));
    Server::attach_wal(
        &r.server,
        &mut r.sim,
        Box::new(FileStore::open(&path).unwrap()),
    )
    .unwrap();
    import(&mut r);
    for _ in 0..4 {
        let h = export_add(&mut r);
        r.sim.run();
        assert!(h.committed.is_ready());
    }
    let image = r.server.borrow().export_store();

    // A brand-new incarnation built straight from the device.
    let reborn = Server::recover(
        &r.net,
        ServerConfig::workstation(SERVER),
        &mut r.sim,
        Box::new(FileStore::open(&path).unwrap()),
    )
    .unwrap();
    assert_eq!(reborn.borrow().export_store(), image);
    assert_eq!(
        reborn.borrow().get_object(&urn("c")).unwrap().field("n"),
        Some("4")
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crashed_server_drops_traffic_and_events_narrate_the_outage() {
    let mut r = rig(21, ServerConfig::workstation(SERVER));
    attach_mem_wal(&mut r);
    import(&mut r);

    let events: Rc<RefCell<Vec<ServerEvent>>> = Rc::new(RefCell::new(Vec::new()));
    let sink = events.clone();
    Server::on_event(&r.server, move |_sim, ev| {
        sink.borrow_mut().push(ev.clone())
    });

    r.server
        .borrow_mut()
        .script_crash(2, CrashPoint::AfterAppend);
    let h = export_add(&mut r);
    r.sim.run_for(SimDuration::from_secs(2));
    assert!(r.server.borrow().is_crashed());
    assert!(!h.committed.is_ready(), "reply never left the dead host");

    // Traffic during the outage vanishes: the RTO probe chain needs two
    // strikes (~2 × rto) before the first retransmission reaches the
    // dead host, so leave the outage open well past that.
    r.sim.run_for(SimDuration::from_secs(13));
    assert!(r.sim.stats.counter("server.dropped_while_crashed") > 0);

    Server::crash_restart(&r.server, &mut r.sim).unwrap();
    r.sim.run();
    assert_eq!(h.committed.poll().unwrap().status, OpStatus::Ok);

    let evs = events.borrow();
    assert!(
        matches!(evs[0], ServerEvent::Crashed { durable_commits } if durable_commits == 2),
        "crash event carries the durable-commit count: {evs:?}"
    );
    assert!(
        evs.iter().any(|e| matches!(
            e,
            ServerEvent::Recovered { commits, .. } if *commits == 2
        )),
        "recovery replayed both durable commits: {evs:?}"
    );
}

#[test]
fn commit_replies_received_before_crash_always_survive_recovery() {
    // The soak's first durability invariant at unit scale: any reply
    // the client processed corresponds to a commit that outlives the
    // crash.
    let mut r = rig(22, ServerConfig::workstation(SERVER));
    attach_mem_wal(&mut r);
    import(&mut r);
    let mut replied = Vec::new();
    for _ in 0..6 {
        let h = export_add(&mut r);
        r.sim.run();
        assert!(h.committed.is_ready());
        replied.push(h.req);
    }
    Server::crash_restart(&r.server, &mut r.sim).unwrap();
    for req in replied {
        assert!(
            r.server.borrow().executed_contains(CLIENT, req),
            "replied commit {req:?} lost by recovery"
        );
    }
}

#[test]
fn wal_attach_is_rejected_twice_and_restart_requires_wal() {
    let mut r = rig(23, ServerConfig::workstation(SERVER));
    assert!(Server::crash_restart(&r.server, &mut r.sim).is_err());
    attach_mem_wal(&mut r);
    assert!(
        Server::attach_wal(&r.server, &mut r.sim, Box::new(MemStore::new())).is_err(),
        "double attach rejected"
    );
}

/// Raw-wire driver used by the committed-prefix property test: sends
/// pre-built export requests straight over the link, collecting replies
/// at a sink handler.
struct RawRig {
    sim: Sim,
    net: Net,
    server: rover_core::ServerRef,
    link: rover_net::LinkId,
    replies: Rc<RefCell<Vec<QrpcReply>>>,
}

fn raw_rig(seed: u64, checkpoint_every: usize) -> RawRig {
    let sim = Sim::new(seed);
    let net = Net::new();
    let link = net.add_link(LinkSpec::ETHERNET_10M, CLIENT, SERVER);
    let mut scfg = ServerConfig::workstation(SERVER);
    scfg.checkpoint_every = checkpoint_every;
    let server = Server::new(&net, scfg);
    server
        .borrow_mut()
        .register_resolver("counter", Box::new(ReexecuteResolver));
    server.borrow_mut().put_object(counter("c"));
    let replies: Rc<RefCell<Vec<QrpcReply>>> = Rc::new(RefCell::new(Vec::new()));
    let sink = replies.clone();
    net.register_host(CLIENT, move |_sim, _net, env: Envelope| {
        if let Ok(rep) = QrpcReply::from_shared(&env.body) {
            sink.borrow_mut().push(rep);
        }
    });
    RawRig {
        sim,
        net,
        server,
        link,
        replies,
    }
}

/// Ordered export `j` (0-based): session_seq j+1, base version j+1.
fn raw_export(j: u64) -> QrpcRequest {
    QrpcRequest {
        req_id: RequestId(j + 1),
        client: CLIENT,
        session: SessionId(1),
        op: RoverOp::Export {
            method: "add".into(),
        },
        urn: urn("c").as_str().to_owned(),
        base_version: Version(j + 1),
        priority: Priority::NORMAL,
        auth: 0,
        acked_below: 0,
        payload: ExportPayload {
            method: "add".into(),
            args: vec!["1".into()],
            session_seq: j + 1,
        }
        .to_bytes(),
        read_vector: Vec::new(),
    }
}

fn raw_send(r: &mut RawRig, j: u64) {
    let env = Envelope::request(CLIENT, SERVER, &raw_export(j));
    let _ = r.net.send(&mut r.sim, r.link, env);
    r.sim.run();
}

mod committed_prefix {
    use super::*;
    use proptest::prelude::*;

    // Crash the write-ahead device at an arbitrary byte offset:
    // recovery must yield exactly the committed-prefix state — the
    // canonical state image (objects, versions, expected_seq, floors,
    // dedup replies) of a crash-free oracle that executed only the
    // durable commits — and the full request stream must then converge
    // with zero re-executions.
    proptest! {
        #[test]
        fn recovery_equals_committed_prefix_oracle(
            k in 3u64..9,
            frac in 0.0f64..1.0,
            seed in 0u64..500,
        ) {
            // Dry run: learn the device geometry (attach-checkpoint
            // size and final length) for this k.
            let (base_len, full_len) = {
                let mut d = raw_rig(seed, 0);
                Server::attach_wal(&d.server, &mut d.sim, Box::new(MemStore::new())).unwrap();
                let base = d.server.borrow().wal_device_len();
                for j in 0..k {
                    raw_send(&mut d, j);
                }
                let full = d.server.borrow().wal_device_len();
                (base, full)
            };
            prop_assert!(full_len > base_len);
            let cut = base_len + ((full_len - base_len) as f64 * frac) as u64;

            // Faulted run: the flush crossing `cut` tears mid-frame and
            // downs the host.
            let mut f = raw_rig(seed, 0);
            let mut store = FaultStore::new(MemStore::new());
            store.push_fault(cut, FaultKind::ShortWrite);
            Server::attach_wal(&f.server, &mut f.sim, Box::new(store)).unwrap();
            for j in 0..k {
                raw_send(&mut f, j);
            }
            prop_assert!(f.server.borrow().is_crashed());
            let replied: Vec<RequestId> =
                f.replies.borrow().iter().map(|rep| rep.req_id).collect();

            Server::crash_restart(&f.server, &mut f.sim).unwrap();
            let m = f.sim.stats.counter("server.recovered_commits");
            prop_assert!(m < k);

            // Every reply the client saw is covered by a recovered
            // commit (replies only leave after the append is durable).
            for req in &replied {
                prop_assert!(f.server.borrow().executed_contains(CLIENT, *req));
            }

            // Oracle: a crash-free volatile server fed exactly the
            // committed prefix. Canonical state images must match.
            let mut o = raw_rig(seed, 0);
            for j in 0..m {
                raw_send(&mut o, j);
            }
            prop_assert_eq!(
                f.server.borrow().export_store(),
                o.server.borrow().export_store(),
                "recovered state != committed-prefix oracle (m={})", m
            );

            // Convergence: replaying the whole stream (the client's
            // retransmissions) dedups the prefix and executes the rest.
            for j in 0..k {
                raw_send(&mut f, j);
            }
            prop_assert_eq!(
                f.server.borrow().get_object(&urn("c")).unwrap().field("n"),
                Some(format!("{k}").as_str())
            );
            prop_assert_eq!(f.sim.stats.counter("server.dedup_miss_reexec"), 0);
        }
    }
}

mod committed_prefix_real_file {
    use super::*;
    use proptest::prelude::*;

    /// Unique scratch path for one proptest case.
    fn wal_path(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rover-durab-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}.wal"))
    }

    // The committed-prefix oracle again, but on a *real* file: the WAL
    // is written through `FileStore` (real `fsync`), the crash is a
    // real `set_len` truncation at an arbitrary byte offset (torn tail
    // included), and recovery re-opens the same path. The sim-backed
    // run above proves the logic; this proves the file backend.
    proptest! {
        #[test]
        fn recovery_equals_committed_prefix_oracle_on_real_files(
            k in 3u64..9,
            frac in 0.0f64..1.0,
            seed in 0u64..500,
        ) {
            let path = wal_path(&format!("cp-{seed}-{k}"));
            let _ = std::fs::remove_file(&path);

            // Full run onto the real device, learning its geometry.
            let (base_len, full_len) = {
                let mut d = raw_rig(seed, 0);
                let store = FileStore::open(&path).unwrap();
                Server::attach_wal(&d.server, &mut d.sim, Box::new(store)).unwrap();
                let base = d.server.borrow().wal_device_len();
                for j in 0..k {
                    raw_send(&mut d, j);
                }
                let full = d.server.borrow().wal_device_len();
                (base, full)
            };
            prop_assert!(full_len > base_len);
            prop_assert_eq!(full_len, std::fs::metadata(&path).unwrap().len());

            // Power failure: everything past `cut` never hit the disk.
            let cut = base_len + ((full_len - base_len) as f64 * frac) as u64;
            let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            file.set_len(cut).unwrap();
            file.sync_data().unwrap();
            drop(file);

            // Reboot from the truncated file.
            let mut f = raw_rig(seed, 0);
            let store = FileStore::open(&path).unwrap();
            Server::attach_wal(&f.server, &mut f.sim, Box::new(store)).unwrap();
            let m = f.sim.stats.counter("server.recovered_commits");
            prop_assert!(m <= k);

            // Oracle: crash-free volatile server fed exactly the prefix.
            let mut o = raw_rig(seed, 0);
            for j in 0..m {
                raw_send(&mut o, j);
            }
            prop_assert_eq!(
                f.server.borrow().export_store(),
                o.server.borrow().export_store(),
                "recovered state != committed-prefix oracle (m={}, cut={})", m, cut
            );

            // Convergence: replaying the whole stream dedups the prefix
            // and executes the rest, exactly once each.
            for j in 0..k {
                raw_send(&mut f, j);
            }
            prop_assert_eq!(
                f.server.borrow().get_object(&urn("c")).unwrap().field("n"),
                Some(format!("{k}").as_str())
            );
            prop_assert_eq!(f.sim.stats.counter("server.dedup_miss_reexec"), 0);
            let _ = std::fs::remove_file(&path);
        }
    }
}
