//! Group-commit engine integration tests: batched WAL flushes hold
//! replies until the group is durable, size-cap and window triggers,
//! per-client reply coalescing, the staged-duplicate gate, mid-batch
//! flush failure via `FaultStore`, and the committed-prefix property at
//! batch granularity (a torn batch tail is discarded whole).

use std::cell::RefCell;
use std::rc::Rc;

use rover_core::{
    Client, ClientConfig, CommitPolicy, ExportPayload, Guarantees, OpStatus, Priority,
    ReexecuteResolver, RoverObject, Server, ServerConfig, ServerEvent, Urn,
};
use rover_log::{FaultKind, FaultStore, MemStore};
use rover_net::{LinkSpec, Net};
use rover_sim::{Sim, SimDuration};
use rover_wire::{
    Envelope, HostId, MsgKind, QrpcReply, QrpcRequest, ReplyBatch, RequestId, RoverOp, SessionId,
    Version, Wire,
};

const CLIENT: HostId = HostId(1);
const SERVER: HostId = HostId(2);

fn urn(p: &str) -> Urn {
    Urn::parse(&format!("urn:rover:t/{p}")).unwrap()
}

fn counter(p: &str) -> RoverObject {
    RoverObject::new(urn(p), "counter")
        .with_code("proc add {k} {rover::set n [expr {[rover::get n 0] + $k}]}")
        .with_field("n", "0")
}

fn group_cfg(max_batch: usize, window: SimDuration) -> ServerConfig {
    let mut cfg = ServerConfig::workstation(SERVER);
    cfg.commit = CommitPolicy::Group { max_batch, window };
    cfg
}

/// Raw-wire driver: pre-built export requests straight over the link,
/// replies (single and coalesced batches) collected at a sink.
struct RawRig {
    sim: Sim,
    net: Net,
    server: rover_core::ServerRef,
    link: rover_net::LinkId,
    replies: Rc<RefCell<Vec<QrpcReply>>>,
}

fn raw_rig(seed: u64, scfg: ServerConfig) -> RawRig {
    let sim = Sim::new(seed);
    let net = Net::new();
    let link = net.add_link(LinkSpec::ETHERNET_10M, CLIENT, SERVER);
    let server = Server::new(&net, scfg);
    server
        .borrow_mut()
        .register_resolver("counter", Box::new(ReexecuteResolver));
    server.borrow_mut().put_object(counter("c"));
    let replies: Rc<RefCell<Vec<QrpcReply>>> = Rc::new(RefCell::new(Vec::new()));
    let sink = replies.clone();
    net.register_host(CLIENT, move |_sim, _net, env: Envelope| match env.kind {
        MsgKind::Reply => {
            if let Ok(rep) = QrpcReply::from_shared(&env.body) {
                sink.borrow_mut().push(rep);
            }
        }
        MsgKind::ReplyBatch => {
            if let Ok(batch) = ReplyBatch::from_shared(&env.body) {
                sink.borrow_mut().extend(batch.replies);
            }
        }
        _ => {}
    });
    RawRig {
        sim,
        net,
        server,
        link,
        replies,
    }
}

/// Ordered export `j` (0-based): session_seq j+1, base version j+1.
fn raw_export(j: u64) -> QrpcRequest {
    QrpcRequest {
        req_id: RequestId(j + 1),
        client: CLIENT,
        session: SessionId(1),
        op: RoverOp::Export {
            method: "add".into(),
        },
        urn: urn("c").as_str().to_owned(),
        base_version: Version(j + 1),
        priority: Priority::NORMAL,
        auth: 0,
        acked_below: 0,
        payload: ExportPayload {
            method: "add".into(),
            args: vec!["1".into()],
            session_seq: j + 1,
        }
        .to_bytes(),
        read_vector: Vec::new(),
    }
}

/// Enqueues exports `js` one millisecond apart without running the sim:
/// they land inside one commit window.
fn raw_burst_enqueue(r: &mut RawRig, js: std::ops::Range<u64>) {
    for (i, j) in js.enumerate() {
        let net = r.net.clone();
        let link = r.link;
        let env = Envelope::request(CLIENT, SERVER, &raw_export(j));
        r.sim
            .schedule_after(SimDuration::from_millis(i as u64), move |sim| {
                let _ = net.send(sim, link, env);
            });
    }
}

fn server_field_n(server: &rover_core::ServerRef) -> String {
    server
        .borrow()
        .get_object(&urn("c"))
        .unwrap()
        .field("n")
        .unwrap()
        .to_owned()
}

#[test]
fn window_flush_holds_replies_until_group_is_durable() {
    let window = SimDuration::from_millis(200);
    let mut r = raw_rig(31, group_cfg(64, window));
    Server::attach_wal(&r.server, &mut r.sim, Box::new(MemStore::new())).unwrap();

    raw_burst_enqueue(&mut r, 0..4);
    // Well past arrival + execution, well before the window expires:
    // all four have executed (the store moved) but no reply has left.
    r.sim.run_for(SimDuration::from_millis(100));
    assert_eq!(server_field_n(&r.server), "4", "executions pipelined");
    assert_eq!(r.sim.stats.counter("server.group_commits"), 0);
    assert!(
        r.replies.borrow().is_empty(),
        "no reply before the group flush"
    );

    r.sim.run();
    assert_eq!(r.sim.stats.counter("server.group_commits"), 1);
    assert_eq!(r.sim.stats.counter("server.wal_appends"), 4);
    assert_eq!(r.replies.borrow().len(), 4);
    // All four replies to one client: coalesced into one envelope.
    assert_eq!(r.sim.stats.counter("server.reply_coalesced"), 3);
    let sizes = r
        .sim
        .stats
        .series("server.group_commit_batch_size")
        .unwrap();
    assert_eq!(sizes.values(), &[4.0]);
    assert!(r.sim.stats.series("server.flush_wait_ms").unwrap().len() == 4);
}

#[test]
fn size_cap_flushes_without_waiting_for_the_window() {
    // A window far longer than the test horizon: only the size cap can
    // flush.
    let mut r = raw_rig(32, group_cfg(2, SimDuration::from_secs(3600)));
    Server::attach_wal(&r.server, &mut r.sim, Box::new(MemStore::new())).unwrap();

    raw_burst_enqueue(&mut r, 0..4);
    r.sim.run_for(SimDuration::from_secs(10));
    assert_eq!(r.sim.stats.counter("server.group_commits"), 2);
    assert_eq!(r.replies.borrow().len(), 4);
    let sizes = r
        .sim
        .stats
        .series("server.group_commit_batch_size")
        .unwrap();
    assert_eq!(sizes.values(), &[2.0, 2.0]);
    // The stale window timers for both flushed batches must not cut a
    // later batch short: send one more and let its own window flush it.
    let net = r.net.clone();
    let link = r.link;
    let env = Envelope::request(CLIENT, SERVER, &raw_export(4));
    r.sim.schedule_after(SimDuration::ZERO, move |sim| {
        let _ = net.send(sim, link, env);
    });
    r.sim.run();
    assert_eq!(r.sim.stats.counter("server.group_commits"), 3);
    assert_eq!(server_field_n(&r.server), "5");
}

#[test]
fn full_stack_client_decodes_coalesced_reply_batches() {
    let mut sim = Sim::new(33);
    let net = Net::new();
    let link = net.add_link(LinkSpec::ETHERNET_10M, CLIENT, SERVER);
    let server = Server::new(&net, group_cfg(64, SimDuration::from_millis(50)));
    server.borrow_mut().add_route(CLIENT, link);
    server
        .borrow_mut()
        .register_resolver("counter", Box::new(ReexecuteResolver));
    server.borrow_mut().put_object(counter("c"));
    Server::attach_wal(&server, &mut sim, Box::new(MemStore::new())).unwrap();
    let client = Client::new(
        &mut sim,
        &net,
        ClientConfig::thinkpad(CLIENT, SERVER),
        vec![link],
    );
    let session = Client::create_session(&client, Guarantees::ALL, true);

    let p = Client::import(&client, &mut sim, &urn("c"), session, Priority::FOREGROUND).unwrap();
    sim.run();
    assert_eq!(p.poll().unwrap().status, OpStatus::Ok);

    // Queue several exports before running: the client streams them,
    // the server groups them, and the replies come back coalesced.
    let handles: Vec<_> = (0..5)
        .map(|_| {
            Client::export(
                &client,
                &mut sim,
                &urn("c"),
                session,
                "add",
                &["1"],
                Priority::NORMAL,
            )
            .unwrap()
        })
        .collect();
    sim.run();
    for h in &handles {
        let st = h.committed.poll().unwrap().status;
        assert!(st == OpStatus::Ok || st == OpStatus::Resolved);
    }
    assert_eq!(server_field_n(&server), "5");
    assert!(sim.stats.counter("server.group_commits") >= 1);
    assert_eq!(
        sim.stats.counter("server.reply_coalesced"),
        sim.stats.counter("client.replies_coalesced"),
        "every coalesced reply the server saved was decoded client-side"
    );
    assert_eq!(sim.stats.counter("client.bad_reply"), 0);
    assert_eq!(sim.stats.counter("server.dedup_miss_reexec"), 0);
}

#[test]
fn duplicate_of_staged_commit_is_dropped_not_replayed() {
    let mut r = raw_rig(34, group_cfg(64, SimDuration::from_millis(200)));
    Server::attach_wal(&r.server, &mut r.sim, Box::new(MemStore::new())).unwrap();

    // Original and an immediate duplicate, both inside the window.
    for (delay_ms, _) in [(0u64, ()), (20, ())] {
        let net = r.net.clone();
        let link = r.link;
        let env = Envelope::request(CLIENT, SERVER, &raw_export(0));
        r.sim
            .schedule_after(SimDuration::from_millis(delay_ms), move |sim| {
                let _ = net.send(sim, link, env);
            });
    }
    r.sim.run_for(SimDuration::from_millis(100));
    assert_eq!(
        r.sim.stats.counter("server.dup_while_staged"),
        1,
        "the duplicate found the original staged and was dropped"
    );
    assert!(r.replies.borrow().is_empty());

    r.sim.run();
    assert_eq!(r.replies.borrow().len(), 1, "one durable commit, one reply");

    // A retransmission after the flush replays from the dedup cache.
    let net = r.net.clone();
    let link = r.link;
    let env = Envelope::request(CLIENT, SERVER, &raw_export(0));
    r.sim.schedule_after(SimDuration::ZERO, move |sim| {
        let _ = net.send(sim, link, env);
    });
    r.sim.run();
    assert_eq!(r.sim.stats.counter("server.dedup_replay"), 1);
    assert_eq!(server_field_n(&r.server), "1");
    assert_eq!(r.sim.stats.counter("server.dedup_miss_reexec"), 0);
}

#[test]
fn flush_and_checkpoint_drains_staged_batch_for_graceful_shutdown() {
    // The SIGTERM path of the real-clock runtime: a partially filled
    // batch (window nowhere near expiring, size cap not hit) must be
    // made durable and checkpointed on demand, so a clean shutdown
    // loses nothing and the next boot replays nothing.
    let mut r = raw_rig(36, group_cfg(64, SimDuration::from_secs(3600)));
    Server::attach_wal(&r.server, &mut r.sim, Box::new(MemStore::new())).unwrap();
    let ckpts_before = r.sim.stats.counter("server.checkpoints");

    raw_burst_enqueue(&mut r, 0..3);
    r.sim.run_for(SimDuration::from_millis(100));
    assert_eq!(server_field_n(&r.server), "3", "executed but staged");
    assert_eq!(r.sim.stats.counter("server.group_commits"), 0);

    Server::flush_and_checkpoint(&r.server, &mut r.sim);
    assert_eq!(r.sim.stats.counter("server.group_commits"), 1);
    assert_eq!(
        r.sim.stats.counter("server.checkpoints"),
        ckpts_before + 1,
        "shutdown wrote a checkpoint"
    );

    // "Exit" here; the next incarnation recovers from the checkpoint
    // alone — nothing to replay, all three commits present, and
    // retransmissions replay from the dedup table (no re-execution).
    Server::crash_restart(&r.server, &mut r.sim).unwrap();
    assert_eq!(r.sim.stats.counter("server.recovered_commits"), 0);
    assert_eq!(server_field_n(&r.server), "3");
    for j in 0..3 {
        assert!(r
            .server
            .borrow()
            .executed_contains(CLIENT, RequestId(j + 1)));
    }
    raw_burst_enqueue(&mut r, 0..3);
    r.sim.run();
    assert_eq!(server_field_n(&r.server), "3", "duplicates replayed");
    assert_eq!(r.sim.stats.counter("server.dedup_miss_reexec"), 0);

    // Idempotent: with nothing staged it is a clean no-op checkpoint.
    Server::flush_and_checkpoint(&r.server, &mut r.sim);
    assert_eq!(r.sim.stats.counter("server.group_commits"), 1);
}

#[test]
fn mid_batch_flush_failure_crashes_host_and_no_group_reply_leaks() {
    // Learn where the device stands after the attach checkpoint, then
    // tear the *group* frame of the first batch.
    let base_len = {
        let mut d = raw_rig(35, group_cfg(4, SimDuration::from_millis(100)));
        Server::attach_wal(&d.server, &mut d.sim, Box::new(MemStore::new())).unwrap();
        let len = d.server.borrow().wal_device_len();
        len
    };
    let mut r = raw_rig(35, group_cfg(4, SimDuration::from_millis(100)));
    let mut store = FaultStore::new(MemStore::new());
    store.push_fault(base_len + 30, FaultKind::ShortWrite);
    Server::attach_wal(&r.server, &mut r.sim, Box::new(store)).unwrap();

    raw_burst_enqueue(&mut r, 0..4);
    r.sim.run();

    // The size-cap flush hit the fault: host down, torn frame on disk,
    // and — the invariant under test — not one of the four replies
    // ever left the host.
    assert_eq!(r.sim.stats.counter("server.wal_append_failed"), 1);
    assert_eq!(r.sim.stats.counter("server.crashes"), 1);
    assert_eq!(r.sim.stats.counter("server.staged_lost_on_crash"), 4);
    assert!(r.server.borrow().is_crashed());
    assert!(
        r.replies.borrow().is_empty(),
        "a flush that failed mid-batch must not leak any group reply"
    );

    // Recovery discards the torn batch whole and the client's
    // retransmissions re-execute *freshly* — they are first executions,
    // not at-most-once violations.
    Server::crash_restart(&r.server, &mut r.sim).unwrap();
    assert!(r.sim.stats.counter("server.recovery_truncated_tail") > 0);
    assert_eq!(r.sim.stats.counter("server.recovered_commits"), 0);
    assert_eq!(server_field_n(&r.server), "0");

    raw_burst_enqueue(&mut r, 0..4);
    r.sim.run();
    assert_eq!(server_field_n(&r.server), "4");
    assert_eq!(
        r.sim.stats.counter("server.dedup_miss_reexec"),
        0,
        "retransmits after the lost batch re-execute nothing already seen"
    );
    assert_eq!(r.replies.borrow().len(), 4);
}

#[test]
fn group_commit_event_narrates_flushes() {
    let mut r = raw_rig(36, group_cfg(3, SimDuration::from_secs(3600)));
    Server::attach_wal(&r.server, &mut r.sim, Box::new(MemStore::new())).unwrap();
    let flushes: Rc<RefCell<Vec<(usize, usize)>>> = Rc::new(RefCell::new(Vec::new()));
    let sink = flushes.clone();
    Server::on_event(&r.server, move |_sim, ev| {
        if let ServerEvent::GroupCommit { records, wal_bytes } = ev {
            sink.borrow_mut().push((*records, *wal_bytes));
        }
    });
    raw_burst_enqueue(&mut r, 0..3);
    r.sim.run_for(SimDuration::from_secs(5));
    let evs = flushes.borrow();
    assert_eq!(evs.len(), 1);
    assert_eq!(evs[0].0, 3);
    assert!(evs[0].1 > 0);
}

mod batch_committed_prefix {
    use super::*;
    use proptest::prelude::*;

    // Crash the write-ahead device at an arbitrary byte offset while
    // the server runs under group commit: recovery must land exactly on
    // a batch boundary (the torn batch is discarded whole — recovered
    // commits equal the sum of the *successfully flushed* batch sizes),
    // every reply that left is covered by a recovered commit, and the
    // retransmitted stream converges with zero re-executions.
    proptest! {
        #[test]
        fn recovery_lands_on_batch_boundaries(
            k in 4u64..12,
            max_batch in 2usize..5,
            frac in 0.0f64..1.0,
            seed in 0u64..500,
        ) {
            let window = SimDuration::from_millis(40);
            // Dry run for device geometry under this exact workload.
            let (base_len, full_len) = {
                let mut d = raw_rig(seed, group_cfg(max_batch, window));
                Server::attach_wal(&d.server, &mut d.sim, Box::new(MemStore::new())).unwrap();
                let base = d.server.borrow().wal_device_len();
                raw_burst_enqueue(&mut d, 0..k);
                d.sim.run();
                let full = d.server.borrow().wal_device_len();
                (base, full)
            };
            prop_assert!(full_len > base_len);
            let cut = base_len + ((full_len - base_len) as f64 * frac) as u64;

            // Faulted run: the flush crossing `cut` tears mid-frame.
            let mut f = raw_rig(seed, group_cfg(max_batch, window));
            let mut store = FaultStore::new(MemStore::new());
            store.push_fault(cut, FaultKind::ShortWrite);
            Server::attach_wal(&f.server, &mut f.sim, Box::new(store)).unwrap();
            let flushed: Rc<RefCell<u64>> = Rc::new(RefCell::new(0));
            let sink = flushed.clone();
            Server::on_event(&f.server, move |_sim, ev| {
                if let ServerEvent::GroupCommit { records, .. } = ev {
                    *sink.borrow_mut() += *records as u64;
                }
            });
            raw_burst_enqueue(&mut f, 0..k);
            f.sim.run();
            prop_assert!(f.server.borrow().is_crashed());
            let replied: Vec<RequestId> =
                f.replies.borrow().iter().map(|rep| rep.req_id).collect();

            Server::crash_restart(&f.server, &mut f.sim).unwrap();
            let m = f.sim.stats.counter("server.recovered_commits");
            // Batch granularity: exactly the durably flushed groups.
            prop_assert_eq!(m, *flushed.borrow(),
                "recovery must discard the torn batch whole");
            prop_assert!(m < k);

            // No reply in a group ever left before its batch flushed.
            for req in &replied {
                prop_assert!(f.server.borrow().executed_contains(CLIENT, *req));
            }

            // Committed-prefix oracle: a crash-free server fed exactly
            // the m durable commits has the identical canonical state.
            let mut o = raw_rig(seed, group_cfg(max_batch, window));
            raw_burst_enqueue(&mut o, 0..m);
            o.sim.run();
            prop_assert_eq!(
                f.server.borrow().export_store(),
                o.server.borrow().export_store(),
                "recovered state != batch committed-prefix oracle (m={})", m
            );

            // Convergence with zero at-most-once violations.
            raw_burst_enqueue(&mut f, 0..k);
            f.sim.run();
            prop_assert_eq!(
                f.server.borrow().get_object(&urn("c")).unwrap().field("n"),
                Some(format!("{k}").as_str())
            );
            prop_assert_eq!(f.sim.stats.counter("server.dedup_miss_reexec"), 0);
        }
    }
}
