//! Property tests for the `ROV1`/`ROV2` checkpoint codec: arbitrary
//! images round-trip byte-identically, truncation at any point is a
//! typed error (never a panic or a partial image), and byte corruption
//! never panics the decoder.

use proptest::prelude::*;

use rover_core::{decode_checkpoint, encode_checkpoint, CheckpointImage, RoverObject, Urn};
use rover_wire::{Bytes, OpStatus, QrpcReply, RequestId, Version};

fn arb_object() -> impl Strategy<Value = RoverObject> {
    (
        "urn:rover:[a-z]{1,8}/[a-z0-9]{1,12}",
        "[a-z]{1,8}",
        proptest::collection::vec(("[a-z]{1,6}", "[ -~]{0,24}"), 0..4),
        any::<u64>(),
    )
        .prop_map(|(urn, type_name, fields, version)| {
            let mut obj = RoverObject::new(Urn::parse(&urn).expect("generated urn"), &type_name);
            for (k, v) in &fields {
                obj = obj.with_field(k, v);
            }
            obj.version = Version(version);
            obj
        })
}

fn arb_reply() -> impl Strategy<Value = QrpcReply> {
    (
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(r, v, payload)| QrpcReply {
            req_id: RequestId(r),
            status: OpStatus::Ok,
            version: Version(v),
            payload: Bytes::from(payload),
        })
}

fn arb_image() -> impl Strategy<Value = CheckpointImage> {
    (
        proptest::collection::vec(arb_object(), 0..4),
        proptest::collection::vec(((any::<u32>(), any::<u64>()), any::<u64>()), 0..4),
        proptest::collection::vec((any::<u32>(), any::<u64>()), 0..4),
        proptest::collection::vec(
            (any::<u32>(), proptest::collection::vec(any::<u64>(), 0..5)),
            0..3,
        ),
        proptest::collection::vec(((any::<u32>(), any::<u64>()), arb_reply()), 0..3),
    )
        .prop_map(
            |(objects, expected_seq, ack_floors, executed, dedup)| CheckpointImage {
                objects,
                expected_seq,
                ack_floors,
                executed,
                dedup,
            },
        )
}

proptest! {
    #[test]
    fn checkpoint_images_roundtrip(img in arb_image()) {
        let bytes = encode_checkpoint(&img);
        let back = decode_checkpoint(&bytes).unwrap();
        prop_assert_eq!(&back, &img);
        // Re-encoding the decoded image is byte-identical: the codec
        // has one canonical byte form per image.
        prop_assert_eq!(encode_checkpoint(&back), bytes);
    }

    #[test]
    fn truncation_is_always_a_typed_error(img in arb_image(), cut_frac in 0.0f64..1.0) {
        let bytes = encode_checkpoint(&img);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            prop_assert!(decode_checkpoint(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn corruption_never_panics(
        img in arb_image(),
        at_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut bytes = encode_checkpoint(&img);
        if !bytes.is_empty() {
            let at = ((bytes.len() as f64) * at_frac) as usize % bytes.len();
            bytes[at] ^= 1 << bit;
            // Either outcome is fine; what matters is that it's an
            // outcome, not a panic — and that anything accepted still
            // round-trips.
            if let Ok(got) = decode_checkpoint(&bytes) {
                let re = encode_checkpoint(&got);
                prop_assert_eq!(decode_checkpoint(&re).unwrap(), got);
            }
        }
    }
}
