//! End-to-end toolkit tests: client + server over the simulated network,
//! exercising disconnected operation, queue drain, conflicts,
//! at-most-once execution, session guarantees, and split-phase replies.

use std::cell::RefCell;
use std::rc::Rc;

use rover_core::{
    Client, ClientConfig, ClientEvent, ClientRef, Guarantees, LogPolicy, OpStatus, Priority,
    ReexecuteResolver, RejectResolver, RoverObject, ScriptResolver, Server, ServerConfig,
    ServerRef, Urn,
};
use rover_net::{HostSched, LinkId, LinkSpec, Net, SmtpRelay};
use rover_sim::{Sim, SimDuration};
use rover_wire::{HostId, SessionId};

const CLIENT: HostId = HostId(1);
const CLIENT2: HostId = HostId(3);
const SERVER: HostId = HostId(2);

struct Bed {
    sim: Sim,
    net: Net,
    link: LinkId,
    server: ServerRef,
    client: ClientRef,
    session: SessionId,
}

fn counter_obj(path: &str) -> RoverObject {
    RoverObject::new(
        Urn::parse(&format!("urn:rover:t/{path}")).unwrap(),
        "counter",
    )
    .with_code(
        "proc get {} {rover::get n 0}
             proc add {k} {rover::set n [expr {[rover::get n 0] + $k}]}",
    )
    .with_field("n", "0")
}

fn urn(path: &str) -> Urn {
    Urn::parse(&format!("urn:rover:t/{path}")).unwrap()
}

fn bed(spec: LinkSpec) -> Bed {
    bed_with(spec, ClientConfig::thinkpad(CLIENT, SERVER))
}

fn bed_with(spec: LinkSpec, cfg: ClientConfig) -> Bed {
    let mut sim = Sim::new(42);
    let net = Net::new();
    let link = net.add_link(spec, CLIENT, SERVER);
    let server = Server::new(&net, ServerConfig::workstation(SERVER));
    server.borrow_mut().add_route(CLIENT, link);
    server
        .borrow_mut()
        .register_resolver("counter", Box::new(ReexecuteResolver));
    let client = Client::new(&mut sim, &net, cfg, vec![link]);
    let session = Client::create_session(&client, Guarantees::ALL, true);
    Bed {
        sim,
        net,
        link,
        server,
        client,
        session,
    }
}

#[test]
fn import_miss_then_hit() {
    let mut b = bed(LinkSpec::WAVELAN_2M);
    b.server
        .borrow_mut()
        .put_object(counter_obj("c").with_field("n", "7"));

    let p = Client::import(
        &b.client,
        &mut b.sim,
        &urn("c"),
        b.session,
        Priority::FOREGROUND,
    )
    .unwrap();
    b.sim.run();
    let miss_latency = p.resolved_at().unwrap();
    let o = p.poll().unwrap();
    assert_eq!(o.status, OpStatus::Ok);
    assert!(!o.from_cache);
    assert_eq!(o.object.unwrap().field("n"), Some("7"));

    let t0 = b.sim.now();
    let p2 = Client::import(
        &b.client,
        &mut b.sim,
        &urn("c"),
        b.session,
        Priority::FOREGROUND,
    )
    .unwrap();
    b.sim.run();
    let hit_latency = p2.resolved_at().unwrap().since(t0);
    assert!(p2.poll().unwrap().from_cache);
    // A cache hit is orders of magnitude faster than the network fetch.
    assert!(hit_latency.as_micros() * 10 < miss_latency.as_micros());
    assert_eq!(b.sim.stats.counter("client.cache_hits"), 1);
    assert_eq!(b.sim.stats.counter("client.cache_misses"), 1);
}

#[test]
fn import_of_missing_object_reports_status() {
    let mut b = bed(LinkSpec::ETHERNET_10M);
    let p = Client::import(
        &b.client,
        &mut b.sim,
        &urn("ghost"),
        b.session,
        Priority::NORMAL,
    )
    .unwrap();
    b.sim.run();
    assert_eq!(p.poll().unwrap().status, OpStatus::NoSuchObject);
}

#[test]
fn disconnected_import_queues_until_reconnect() {
    let mut b = bed(LinkSpec::WAVELAN_2M);
    b.server.borrow_mut().put_object(counter_obj("c"));
    b.net.set_up(&mut b.sim, b.link, false);

    let p = Client::import(
        &b.client,
        &mut b.sim,
        &urn("c"),
        b.session,
        Priority::FOREGROUND,
    )
    .unwrap();
    b.sim.run_for(SimDuration::from_secs(300));
    assert!(!p.is_ready());
    assert_eq!(Client::outstanding_count(&b.client), 1);
    assert_eq!(Client::log_len(&b.client), 1);

    b.net.set_up(&mut b.sim, b.link, true);
    b.sim.run();
    assert_eq!(p.poll().unwrap().status, OpStatus::Ok);
    assert!(p.resolved_at().unwrap() >= rover_sim::SimTime::from_secs(300));
    assert_eq!(Client::outstanding_count(&b.client), 0);
    assert_eq!(Client::log_len(&b.client), 0);
}

#[test]
fn export_applies_tentatively_then_commits() {
    let mut b = bed(LinkSpec::CSLIP_14_4);
    b.server.borrow_mut().put_object(counter_obj("c"));
    // Import first (exports need a cached copy).
    let p = Client::import(
        &b.client,
        &mut b.sim,
        &urn("c"),
        b.session,
        Priority::FOREGROUND,
    )
    .unwrap();
    b.sim.run();
    assert!(p.is_ready());

    let events = Rc::new(RefCell::new(Vec::new()));
    let ev2 = events.clone();
    Client::on_event(&b.client, move |_sim, e| ev2.borrow_mut().push(e.clone()));

    let t0 = b.sim.now();
    let h = Client::export(
        &b.client,
        &mut b.sim,
        &urn("c"),
        b.session,
        "add",
        &["5"],
        Priority::NORMAL,
    )
    .unwrap();
    b.sim.run();

    // Tentative resolution is local-speed; commit waited on the modem.
    let tentative_ms = h.tentative.resolved_at().unwrap().since(t0).as_millis();
    let commit_ms = h.committed.resolved_at().unwrap().since(t0).as_millis();
    assert!(tentative_ms < 50, "tentative took {tentative_ms}ms");
    assert!(
        commit_ms > tentative_ms * 2,
        "commit {commit_ms}ms vs tentative {tentative_ms}ms"
    );
    assert!(h.tentative.poll().unwrap().tentative);
    assert_eq!(h.committed.poll().unwrap().status, OpStatus::Ok);

    // Server state reflects the operation.
    assert_eq!(
        b.server.borrow().get_object(&urn("c")).unwrap().field("n"),
        Some("5")
    );
    // Events: tentative apply then commit.
    let evs = events.borrow();
    assert!(evs
        .iter()
        .any(|e| matches!(e, ClientEvent::TentativeApplied { .. })));
    assert!(evs.iter().any(|e| matches!(
        e,
        ClientEvent::Committed {
            status: OpStatus::Ok,
            ..
        }
    )));
}

#[test]
fn disconnected_exports_drain_in_order_on_reconnect() {
    let mut b = bed(LinkSpec::WAVELAN_2M);
    b.server.borrow_mut().put_object(counter_obj("c"));
    let p = Client::import(
        &b.client,
        &mut b.sim,
        &urn("c"),
        b.session,
        Priority::FOREGROUND,
    )
    .unwrap();
    b.sim.run();
    assert!(p.is_ready());

    b.net.set_up(&mut b.sim, b.link, false);
    let mut handles = Vec::new();
    for k in 1..=10 {
        let h = Client::export(
            &b.client,
            &mut b.sim,
            &urn("c"),
            b.session,
            "add",
            &[&k.to_string()],
            Priority::NORMAL,
        )
        .unwrap();
        handles.push(h);
        b.sim.run_for(SimDuration::from_secs(1));
    }
    // All tentative, none committed; tentative copy shows the local sum.
    assert!(handles.iter().all(|h| h.tentative.is_ready()));
    assert!(handles.iter().all(|h| !h.committed.is_ready()));
    let tent = Client::cached_object(&b.client, &urn("c"), true).unwrap();
    assert_eq!(tent.field("n"), Some("55"));
    assert_eq!(Client::log_len(&b.client), 10);

    b.net.set_up(&mut b.sim, b.link, true);
    b.sim.run();
    assert!(handles.iter().all(|h| h.committed.is_ready()));
    assert_eq!(
        b.server.borrow().get_object(&urn("c")).unwrap().field("n"),
        Some("55")
    );
    // Committed copy caught up; tentative cleared.
    let committed = Client::cached_object(&b.client, &urn("c"), false).unwrap();
    assert_eq!(committed.field("n"), Some("55"));
    assert_eq!(Client::log_len(&b.client), 0);
}

#[test]
fn conflicting_exports_reexecute_with_type_resolver() {
    // Two clients add to the same counter from the same base version;
    // the counter type's resolver re-executes, so both commit.
    let mut sim = Sim::new(7);
    let net = Net::new();
    let l1 = net.add_link(LinkSpec::ETHERNET_10M, CLIENT, SERVER);
    let l2 = net.add_link(LinkSpec::ETHERNET_10M, CLIENT2, SERVER);
    let server = Server::new(&net, ServerConfig::workstation(SERVER));
    server.borrow_mut().add_route(CLIENT, l1);
    server.borrow_mut().add_route(CLIENT2, l2);
    server
        .borrow_mut()
        .register_resolver("counter", Box::new(ReexecuteResolver));
    server.borrow_mut().put_object(counter_obj("c"));

    let c1 = Client::new(
        &mut sim,
        &net,
        ClientConfig::thinkpad(CLIENT, SERVER),
        vec![l1],
    );
    let c2 = Client::new(
        &mut sim,
        &net,
        ClientConfig::thinkpad(CLIENT2, SERVER),
        vec![l2],
    );
    let s1 = Client::create_session(&c1, Guarantees::ALL, true);
    let s2 = Client::create_session(&c2, Guarantees::ALL, true);

    for (c, s) in [(&c1, s1), (&c2, s2)] {
        let p = Client::import(c, &mut sim, &urn("c"), s, Priority::FOREGROUND).unwrap();
        sim.run();
        assert!(p.is_ready());
    }

    // Both export from base version 1.
    let h1 = Client::export(
        &c1,
        &mut sim,
        &urn("c"),
        s1,
        "add",
        &["10"],
        Priority::NORMAL,
    )
    .unwrap();
    let h2 = Client::export(
        &c2,
        &mut sim,
        &urn("c"),
        s2,
        "add",
        &["32"],
        Priority::NORMAL,
    )
    .unwrap();
    sim.run();

    let st1 = h1.committed.poll().unwrap().status;
    let st2 = h2.committed.poll().unwrap().status;
    // One commits cleanly, the other conflicts and is auto-resolved.
    assert!(matches!(
        (st1, st2),
        (OpStatus::Ok, OpStatus::Resolved) | (OpStatus::Resolved, OpStatus::Ok)
    ));
    assert_eq!(
        server.borrow().get_object(&urn("c")).unwrap().field("n"),
        Some("42")
    );
}

#[test]
fn unresolvable_conflict_is_reflected_to_user() {
    let mut sim = Sim::new(7);
    let net = Net::new();
    let l1 = net.add_link(LinkSpec::ETHERNET_10M, CLIENT, SERVER);
    let l2 = net.add_link(LinkSpec::ETHERNET_10M, CLIENT2, SERVER);
    let server = Server::new(&net, ServerConfig::workstation(SERVER));
    server.borrow_mut().add_route(CLIENT, l1);
    server.borrow_mut().add_route(CLIENT2, l2);
    server
        .borrow_mut()
        .register_resolver("counter", Box::new(RejectResolver));
    server.borrow_mut().put_object(counter_obj("c"));

    let c1 = Client::new(
        &mut sim,
        &net,
        ClientConfig::thinkpad(CLIENT, SERVER),
        vec![l1],
    );
    let c2 = Client::new(
        &mut sim,
        &net,
        ClientConfig::thinkpad(CLIENT2, SERVER),
        vec![l2],
    );
    let s1 = Client::create_session(&c1, Guarantees::NONE, true);
    let s2 = Client::create_session(&c2, Guarantees::NONE, true);
    for (c, s) in [(&c1, s1), (&c2, s2)] {
        let p = Client::import(c, &mut sim, &urn("c"), s, Priority::FOREGROUND).unwrap();
        sim.run();
        assert!(p.is_ready());
    }

    let conflicts = Rc::new(RefCell::new(0));
    let k = conflicts.clone();
    Client::on_event(&c2, move |_s, e| {
        if matches!(e, ClientEvent::ConflictReflected { .. }) {
            *k.borrow_mut() += 1;
        }
    });

    let h1 = Client::export(
        &c1,
        &mut sim,
        &urn("c"),
        s1,
        "add",
        &["10"],
        Priority::NORMAL,
    )
    .unwrap();
    let h2 = Client::export(
        &c2,
        &mut sim,
        &urn("c"),
        s2,
        "add",
        &["32"],
        Priority::NORMAL,
    )
    .unwrap();
    sim.run();

    let statuses = [
        h1.committed.poll().unwrap().status,
        h2.committed.poll().unwrap().status,
    ];
    assert!(statuses.contains(&OpStatus::Ok));
    assert!(statuses.contains(&OpStatus::Conflict));
    assert_eq!(
        *conflicts.borrow() + sim.stats.counter("client.conflicts") as i32 - 1,
        1
    );
    // Only one add landed.
    let n = server
        .borrow()
        .get_object(&urn("c"))
        .unwrap()
        .field("n")
        .unwrap()
        .to_owned();
    assert!(n == "10" || n == "32");
}

#[test]
fn script_resolver_merges_calendar_style() {
    // The object's own `resolve` proc accepts non-overlapping slots.
    let mut b = bed(LinkSpec::ETHERNET_10M);
    b.server
        .borrow_mut()
        .register_resolver("cal", Box::new(ScriptResolver::default()));
    let obj = RoverObject::new(urn("cal"), "cal").with_code(
        "proc book {slot who} {
            if {[rover::has slot$slot]} {error taken}
            rover::set slot$slot $who
         }
         proc resolve {method args_list base} {
            if {$method eq \"book\"} {
                set slot [lindex $args_list 0]
                if {![rover::has slot$slot]} {return accept}
            }
            return reject
         }",
    );
    b.server.borrow_mut().put_object(obj);

    let p = Client::import(
        &b.client,
        &mut b.sim,
        &urn("cal"),
        b.session,
        Priority::FOREGROUND,
    )
    .unwrap();
    b.sim.run();
    assert!(p.is_ready());

    // Simulate a concurrent commit at the server: someone books slot 9.
    {
        let mut sv = b.server.borrow_mut();
        let mut cur = sv.get_object(&urn("cal")).unwrap().clone();
        cur.fields.insert("slot9".into(), "eve".into());
        cur.version = rover_wire::Version(cur.version.0 + 1);
        sv.put_object(cur);
    }

    // Our export (slot 3) is based on the stale version → conflict →
    // script resolver accepts because slot 3 is free.
    let h = Client::export(
        &b.client,
        &mut b.sim,
        &urn("cal"),
        b.session,
        "book",
        &["3", "alice"],
        Priority::NORMAL,
    )
    .unwrap();
    b.sim.run();
    assert_eq!(h.committed.poll().unwrap().status, OpStatus::Resolved);
    let sv = b.server.borrow();
    let cur = sv.get_object(&urn("cal")).unwrap();
    assert_eq!(cur.field("slot3"), Some("alice"));
    assert_eq!(cur.field("slot9"), Some("eve"));
}

#[test]
fn at_most_once_across_reply_loss_and_retransmission() {
    // Deliver the request, lose the reply by dropping the link during
    // server turnaround, reconnect: the retransmission must hit the
    // dedup cache, not re-execute the add.
    let mut cfg = ClientConfig::thinkpad(CLIENT, SERVER);
    cfg.rto = SimDuration::from_secs(30);
    let mut b = bed_with(LinkSpec::CSLIP_14_4, cfg);
    b.server.borrow_mut().put_object(counter_obj("c"));
    let p = Client::import(
        &b.client,
        &mut b.sim,
        &urn("c"),
        b.session,
        Priority::FOREGROUND,
    )
    .unwrap();
    b.sim.run();
    assert!(p.is_ready());

    let h = Client::export(
        &b.client,
        &mut b.sim,
        &urn("c"),
        b.session,
        "add",
        &["1"],
        Priority::NORMAL,
    )
    .unwrap();
    // The request takes >130 ms to cross the modem; give it 3 s so the
    // server definitely processed it, then cut the link so the reply
    // (or at least the client's view) is at risk, and reconnect.
    b.sim.run_for(SimDuration::from_secs(3));
    b.net.set_up(&mut b.sim, b.link, false);
    b.sim.run_for(SimDuration::from_secs(60));
    b.net.set_up(&mut b.sim, b.link, true);
    b.sim.run();

    assert!(h.committed.is_ready());
    assert_eq!(
        b.server.borrow().get_object(&urn("c")).unwrap().field("n"),
        Some("1")
    );
}

#[test]
fn exactly_once_effect_under_flaky_connectivity() {
    let mut cfg = ClientConfig::thinkpad(CLIENT, SERVER);
    cfg.rto = SimDuration::from_secs(20);
    let mut b = bed_with(LinkSpec::CSLIP_14_4, cfg);
    b.server.borrow_mut().put_object(counter_obj("c"));
    let p = Client::import(
        &b.client,
        &mut b.sim,
        &urn("c"),
        b.session,
        Priority::FOREGROUND,
    )
    .unwrap();
    b.sim.run();
    assert!(p.is_ready());

    // 20 exports of +1 while the link flaps every few seconds.
    b.net.schedule_pattern(
        &mut b.sim,
        b.link,
        SimDuration::from_secs(5),
        SimDuration::from_secs(7),
        40,
    );
    let mut handles = Vec::new();
    for _ in 0..20 {
        let h = Client::export(
            &b.client,
            &mut b.sim,
            &urn("c"),
            b.session,
            "add",
            &["1"],
            Priority::NORMAL,
        )
        .unwrap();
        handles.push(h);
        b.sim.run_for(SimDuration::from_secs(2));
    }
    b.sim.run();
    assert!(
        handles.iter().all(|h| h.committed.is_ready()),
        "all exports eventually commit"
    );
    assert_eq!(
        b.server.borrow().get_object(&urn("c")).unwrap().field("n"),
        Some("20"),
        "adds applied exactly once each despite {} retransmits",
        b.sim.stats.counter("client.retransmits"),
    );
}

#[test]
fn ryw_session_sees_its_own_pending_writes() {
    let mut b = bed(LinkSpec::CSLIP_2_4);
    b.server.borrow_mut().put_object(counter_obj("c"));
    let p = Client::import(
        &b.client,
        &mut b.sim,
        &urn("c"),
        b.session,
        Priority::FOREGROUND,
    )
    .unwrap();
    b.sim.run();
    assert!(p.is_ready());

    b.net.set_up(&mut b.sim, b.link, false);
    let _h = Client::export(
        &b.client,
        &mut b.sim,
        &urn("c"),
        b.session,
        "add",
        &["9"],
        Priority::NORMAL,
    )
    .unwrap();
    b.sim.run_for(SimDuration::from_secs(5));

    // Import while the export is pending: RYW serves the tentative copy.
    let p = Client::import(
        &b.client,
        &mut b.sim,
        &urn("c"),
        b.session,
        Priority::FOREGROUND,
    )
    .unwrap();
    b.sim.run_for(SimDuration::from_secs(5));
    let o = p.poll().expect("served from cache while disconnected");
    assert!(o.tentative);
    assert_eq!(o.object.unwrap().field("n"), Some("9"));
}

#[test]
fn foreground_overtakes_queued_bulk_traffic() {
    let mut b = bed(LinkSpec::CSLIP_2_4);
    for i in 0..6 {
        b.server
            .borrow_mut()
            .put_object(counter_obj(&format!("bulk{i}")).with_field("pad", &"x".repeat(2000)));
    }
    b.server.borrow_mut().put_object(counter_obj("hot"));

    // Queue six bulk prefetches, then one foreground import.
    let bulk_urns: Vec<Urn> = (0..6).map(|i| urn(&format!("bulk{i}"))).collect();
    Client::prefetch(&b.client, &mut b.sim, &bulk_urns, b.session);
    let fg = Client::import(
        &b.client,
        &mut b.sim,
        &urn("hot"),
        b.session,
        Priority::FOREGROUND,
    )
    .unwrap();
    let bulk_done: Vec<_> = bulk_urns
        .iter()
        .map(|u| Client::import(&b.client, &mut b.sim, u, b.session, Priority::BACKGROUND).unwrap())
        .collect();
    b.sim.run();

    let fg_t = fg.resolved_at().unwrap();
    let later_bulk = bulk_done
        .iter()
        .filter(|p| p.resolved_at().unwrap() > fg_t)
        .count();
    assert!(
        later_bulk >= 4,
        "foreground import finished after most bulk traffic"
    );
}

#[test]
fn group_commit_defers_flushes() {
    let mut cfg = ClientConfig::thinkpad(CLIENT, SERVER);
    cfg.log_policy = LogPolicy::GroupCommit {
        n: 4,
        timeout: SimDuration::from_secs(30),
    };
    let mut b = bed_with(LinkSpec::ETHERNET_10M, cfg);
    b.server.borrow_mut().put_object(counter_obj("c"));
    let p = Client::import(
        &b.client,
        &mut b.sim,
        &urn("c"),
        b.session,
        Priority::FOREGROUND,
    )
    .unwrap();
    b.sim.run();
    assert!(p.is_ready());

    // The import itself consumed one (timeout-driven) group flush.
    let baseline = b
        .sim
        .stats
        .series("client.flush_ms")
        .map(|s| s.len())
        .unwrap_or(0);

    // Three quick exports: parked, no new flush yet.
    for _ in 0..3 {
        let _ = Client::export(
            &b.client,
            &mut b.sim,
            &urn("c"),
            b.session,
            "add",
            &["1"],
            Priority::NORMAL,
        )
        .unwrap();
    }
    assert_eq!(
        b.sim
            .stats
            .series("client.flush_ms")
            .map(|s| s.len())
            .unwrap_or(0),
        baseline
    );

    // Fourth export fills the group: exactly one flush covers all four.
    let _ = Client::export(
        &b.client,
        &mut b.sim,
        &urn("c"),
        b.session,
        "add",
        &["1"],
        Priority::NORMAL,
    )
    .unwrap();
    b.sim.run();
    assert_eq!(
        b.sim.stats.series("client.flush_ms").unwrap().len(),
        baseline + 1
    );
    assert_eq!(
        b.server.borrow().get_object(&urn("c")).unwrap().field("n"),
        Some("4")
    );
}

#[test]
fn group_commit_timeout_releases_stragglers() {
    let mut cfg = ClientConfig::thinkpad(CLIENT, SERVER);
    cfg.log_policy = LogPolicy::GroupCommit {
        n: 100,
        timeout: SimDuration::from_secs(10),
    };
    let mut b = bed_with(LinkSpec::ETHERNET_10M, cfg);
    b.server.borrow_mut().put_object(counter_obj("c"));
    let p = Client::import(
        &b.client,
        &mut b.sim,
        &urn("c"),
        b.session,
        Priority::FOREGROUND,
    )
    .unwrap();
    b.sim.run();
    assert!(p.is_ready());

    let h = Client::export(
        &b.client,
        &mut b.sim,
        &urn("c"),
        b.session,
        "add",
        &["1"],
        Priority::NORMAL,
    )
    .unwrap();
    b.sim.run_for(SimDuration::from_secs(5));
    assert!(!h.committed.is_ready(), "still parked before the timeout");
    b.sim.run();
    assert!(h.committed.is_ready(), "timeout flushed and sent it");
}

#[test]
fn stale_group_window_timer_does_not_cut_next_batch_short() {
    // Regression (found by the clock-seam extraction): a size-cap flush
    // left the window timer armed for the batch it had just committed.
    // The stale timer then fired mid-way through the *next* batch's
    // window and flushed it early — the configured window was silently
    // shortened. The generation guard retires a timer with its batch.
    let mut cfg = ClientConfig::thinkpad(CLIENT, SERVER);
    cfg.log_policy = LogPolicy::GroupCommit {
        n: 2,
        timeout: SimDuration::from_secs(10),
    };
    let mut b = bed_with(LinkSpec::ETHERNET_10M, cfg);
    b.server.borrow_mut().put_object(counter_obj("c"));
    let p = Client::import(
        &b.client,
        &mut b.sim,
        &urn("c"),
        b.session,
        Priority::FOREGROUND,
    )
    .unwrap();
    b.sim.run();
    assert!(p.is_ready());

    // Exports A and B fill the group: the size cap flushes them while
    // A's 10 s window timer is still pending.
    for _ in 0..2 {
        let _ = Client::export(
            &b.client,
            &mut b.sim,
            &urn("c"),
            b.session,
            "add",
            &["1"],
            Priority::NORMAL,
        )
        .unwrap();
    }
    b.sim.run_for(SimDuration::from_secs(5));
    assert_eq!(
        b.server.borrow().get_object(&urn("c")).unwrap().field("n"),
        Some("2"),
        "size-cap batch committed"
    );

    // Export C parks 5 s into A's old window. Its own window must run
    // the full 10 s (until t+15); the stale timer would have cut it to
    // 5 s (flush at t+10).
    let h = Client::export(
        &b.client,
        &mut b.sim,
        &urn("c"),
        b.session,
        "add",
        &["1"],
        Priority::NORMAL,
    )
    .unwrap();
    b.sim.run_for(SimDuration::from_secs(8));
    assert!(
        !h.committed.is_ready(),
        "stale window timer flushed the next batch early"
    );
    b.sim.run();
    assert!(h.committed.is_ready());
    assert_eq!(
        b.server.borrow().get_object(&urn("c")).unwrap().field("n"),
        Some("3")
    );
}

#[test]
fn smtp_fallback_carries_replies_across_disconnection() {
    let mut b = bed(LinkSpec::WAVELAN_2M);
    let relay = SmtpRelay::new(b.net.clone(), b.link, SimDuration::from_secs(30));
    b.server.borrow_mut().add_smtp_route(CLIENT, relay);
    b.server
        .borrow_mut()
        .put_object(counter_obj("c").with_field("pad", &"y".repeat(50_000)));

    // Import a large object; sever the link while the reply transmits.
    let p = Client::import(
        &b.client,
        &mut b.sim,
        &urn("c"),
        b.session,
        Priority::FOREGROUND,
    )
    .unwrap();
    b.sim.run_for(SimDuration::from_millis(120));
    b.net.set_up(&mut b.sim, b.link, false);
    b.sim.run_for(SimDuration::from_secs(90));
    assert!(!p.is_ready());
    b.net.set_up(&mut b.sim, b.link, true);
    b.sim.run();

    // The reply arrived — either via retransmission + dedup replay over
    // the link, or via the SMTP spool; the point is split-phase
    // completion despite the drop.
    assert_eq!(p.poll().unwrap().status, OpStatus::Ok);
    assert_eq!(Client::outstanding_count(&b.client), 0);
}

#[test]
fn ping_direct_fails_disconnected_but_qrpc_survives() {
    let mut b = bed(LinkSpec::ETHERNET_10M);
    b.net.set_up(&mut b.sim, b.link, false);

    assert!(Client::ping_direct(&b.client, &mut b.sim, b.session).is_err());

    let p = Client::ping(&b.client, &mut b.sim, b.session, Priority::FOREGROUND);
    b.sim.run_for(SimDuration::from_secs(10));
    assert!(!p.is_ready());
    b.net.set_up(&mut b.sim, b.link, true);
    b.sim.run();
    assert_eq!(p.poll().unwrap().status, OpStatus::Ok);
}

#[test]
fn cache_eviction_emits_events_and_preserves_dirty() {
    let mut cfg = ClientConfig::thinkpad(CLIENT, SERVER);
    cfg.cache_capacity = 30_000;
    let mut b = bed_with(LinkSpec::ETHERNET_10M, cfg);
    for i in 0..5 {
        b.server
            .borrow_mut()
            .put_object(counter_obj(&format!("o{i}")).with_field("pad", &"z".repeat(10_000)));
    }
    let evictions = Rc::new(RefCell::new(Vec::new()));
    let ev = evictions.clone();
    Client::on_event(&b.client, move |_s, e| {
        if let ClientEvent::Evicted { urn } = e {
            ev.borrow_mut().push(urn.clone());
        }
    });
    for i in 0..5 {
        let p = Client::import(
            &b.client,
            &mut b.sim,
            &urn(&format!("o{i}")),
            b.session,
            Priority::NORMAL,
        )
        .unwrap();
        b.sim.run();
        assert!(p.is_ready());
    }
    assert!(!evictions.borrow().is_empty(), "capacity forced evictions");
    let (objs, bytes) = Client::cache_usage(&b.client);
    assert!(bytes <= 30_000);
    assert!(objs < 5);
}

#[test]
fn invoke_local_vs_remote_and_mutation_guard() {
    let mut b = bed(LinkSpec::CSLIP_14_4);
    let obj = counter_obj("c")
        .with_code(
            "proc get {} {rover::get n 0}
             proc add {k} {rover::set n [expr {[rover::get n 0] + $k}]}
             proc summarize {} {
                set total 0
                foreach k [rover::keys item*] {incr total [rover::get $k]}
                return $total
             }",
        )
        .with_field("item1", "10")
        .with_field("item2", "32");
    b.server.borrow_mut().put_object(obj);
    let p = Client::import(
        &b.client,
        &mut b.sim,
        &urn("c"),
        b.session,
        Priority::FOREGROUND,
    )
    .unwrap();
    b.sim.run();
    assert!(p.is_ready());

    // Local invocation: correct and fast.
    let t0 = b.sim.now();
    let lp = Client::invoke_local(&b.client, &mut b.sim, &urn("c"), "summarize", &[]).unwrap();
    b.sim.run();
    let local = lp.resolved_at().unwrap().since(t0);
    assert_eq!(lp.poll().unwrap().value.as_int().unwrap(), 42);

    // Remote invocation over the modem: same answer, much slower.
    let t1 = b.sim.now();
    let rp = Client::invoke_remote(
        &b.client,
        &mut b.sim,
        &urn("c"),
        b.session,
        "summarize",
        &[],
        Priority::FOREGROUND,
    )
    .unwrap();
    b.sim.run();
    let remote = rp.resolved_at().unwrap().since(t1);
    assert_eq!(rp.poll().unwrap().value.as_int().unwrap(), 42);
    assert!(
        remote.as_micros() > local.as_micros() * 10,
        "remote {remote} should dwarf local {local}"
    );

    // Mutating methods may not run through invoke_local.
    assert!(matches!(
        Client::invoke_local(&b.client, &mut b.sim, &urn("c"), "add", &["1"]),
        Err(rover_core::RoverError::LocalMutation(_))
    ));
}

#[test]
fn scheduler_reports_drain_for_e9() {
    let mut b = bed(LinkSpec::CSLIP_14_4);
    b.server.borrow_mut().put_object(counter_obj("c"));
    let p = Client::import(
        &b.client,
        &mut b.sim,
        &urn("c"),
        b.session,
        Priority::FOREGROUND,
    )
    .unwrap();
    b.sim.run();
    assert!(p.is_ready());

    b.net.set_up(&mut b.sim, b.link, false);
    for _ in 0..25 {
        Client::export(
            &b.client,
            &mut b.sim,
            &urn("c"),
            b.session,
            "add",
            &["1"],
            Priority::BULK,
        )
        .unwrap();
        b.sim.run_for(SimDuration::from_millis(200));
    }
    assert_eq!(Client::outstanding_count(&b.client), 25);
    let reconnect_at = b.sim.now();
    b.net.set_up(&mut b.sim, b.link, true);
    b.sim.run();
    let drain = b.sim.now().since(reconnect_at);
    assert_eq!(Client::outstanding_count(&b.client), 0);
    assert_eq!(
        b.server.borrow().get_object(&urn("c")).unwrap().field("n"),
        Some("25")
    );
    // Draining 25 QRPCs over a 14.4K modem takes many seconds (setup +
    // serialized transfers) but not forever.
    assert!(drain > SimDuration::from_secs(5), "drain was {drain}");
    assert!(drain < SimDuration::from_secs(300), "drain was {drain}");
    let _ = HostSched::queue_len; // silence unused import on some cfgs
}

#[test]
fn load_imports_and_runs_method() {
    let mut b = bed(LinkSpec::CSLIP_14_4);
    b.server.borrow_mut().put_object(
        counter_obj("calc")
            .with_code(
                "proc get {} {rover::get n 0}
                 proc stats {} {list count [rover::get n 0] urn [rover::urn]}",
            )
            .with_field("n", "7"),
    );

    // Miss path: load fetches the object, then runs the method.
    let p = Client::load(
        &b.client,
        &mut b.sim,
        &urn("calc"),
        b.session,
        "stats",
        &[],
        Priority::FOREGROUND,
    )
    .unwrap();
    b.sim.run();
    let o = p.poll().unwrap();
    assert_eq!(o.status, OpStatus::Ok);
    assert_eq!(o.value.as_str(), "count 7 urn urn:rover:t/calc");

    // Hit path: immediate.
    let t0 = b.sim.now();
    let p2 = Client::load(
        &b.client,
        &mut b.sim,
        &urn("calc"),
        b.session,
        "get",
        &[],
        Priority::FOREGROUND,
    )
    .unwrap();
    b.sim.run();
    assert_eq!(p2.poll().unwrap().value.as_int().unwrap(), 7);
    assert!(p2.resolved_at().unwrap().since(t0).as_millis() < 100);

    // Missing object propagates the import failure.
    let p3 = Client::load(
        &b.client,
        &mut b.sim,
        &urn("ghost"),
        b.session,
        "get",
        &[],
        Priority::FOREGROUND,
    )
    .unwrap();
    b.sim.run();
    assert_eq!(p3.poll().unwrap().status, OpStatus::NoSuchObject);

    // Missing method surfaces as an exec error.
    let p4 = Client::load(
        &b.client,
        &mut b.sim,
        &urn("calc"),
        b.session,
        "no_such_method",
        &[],
        Priority::FOREGROUND,
    )
    .unwrap();
    b.sim.run();
    assert_eq!(p4.poll().unwrap().status, OpStatus::ExecError);
}

#[test]
fn import_escalation_outrans_background_prefetch() {
    // A page being prefetched at BACKGROUND gets clicked: the foreground
    // re-issue must not wait for the whole background queue.
    let mut b = bed(LinkSpec::CSLIP_14_4);
    for i in 0..4 {
        b.server
            .borrow_mut()
            .put_object(counter_obj(&format!("page{i}")).with_field("pad", &"w".repeat(20_000)));
    }
    // Queue all four as background prefetches.
    let urns: Vec<Urn> = (0..4).map(|i| urn(&format!("page{i}"))).collect();
    Client::prefetch(&b.client, &mut b.sim, &urns, b.session);
    // Click the *last* one (deepest in the background queue).
    let fg = Client::import(
        &b.client,
        &mut b.sim,
        &urns[3],
        b.session,
        Priority::FOREGROUND,
    )
    .unwrap();
    b.sim.run();
    assert!(b.sim.stats.counter("client.imports_escalated") >= 1);
    // The foreground copy beat at least the other two queued prefetches.
    let fg_done = fg.resolved_at().unwrap();
    let total = b.sim.now();
    assert!(
        fg_done.as_micros() < total.as_micros() * 3 / 4,
        "foreground at {fg_done}, all done at {total}"
    );
}

#[test]
fn adaptive_placement_picks_sensibly() {
    use rover_core::{Placement, PlacementHints};

    // A large record store where the filter result is tiny.
    let mut b = bed(LinkSpec::CSLIP_14_4);
    let mut big = counter_obj("big").with_code("proc probe {} {return tiny}");
    big.fields.insert("blob".into(), "B".repeat(80_000));
    b.server.borrow_mut().put_object(big);
    b.server
        .borrow_mut()
        .put_object(counter_obj("small").with_field("n", "1"));

    // Uncached + huge object + tiny result → ship the function.
    let (p, placement) = Client::invoke_adaptive(
        &b.client,
        &mut b.sim,
        &urn("big"),
        b.session,
        "probe",
        &[],
        PlacementHints {
            result_bytes: 16,
            object_bytes: Some(80_000),
            compute_steps: 100,
            reuse_likely: false,
        },
        Priority::FOREGROUND,
    )
    .unwrap();
    assert_eq!(placement, Placement::Remote);
    b.sim.run();
    assert_eq!(p.poll().unwrap().value.as_str(), "tiny");
    assert!(
        !Client::is_cached(&b.client, &urn("big")),
        "remote invoke does not cache"
    );

    // Uncached + small object + reuse expected → import then run.
    let (p, placement) = Client::invoke_adaptive(
        &b.client,
        &mut b.sim,
        &urn("small"),
        b.session,
        "get",
        &[],
        PlacementHints {
            result_bytes: 16,
            object_bytes: Some(200),
            compute_steps: 100,
            reuse_likely: true,
        },
        Priority::FOREGROUND,
    )
    .unwrap();
    assert_eq!(placement, Placement::ImportThenLocal);
    b.sim.run();
    assert_eq!(p.poll().unwrap().value.as_int().unwrap(), 1);
    assert!(Client::is_cached(&b.client, &urn("small")));

    // Cached → local, regardless of hints.
    let (p, placement) = Client::invoke_adaptive(
        &b.client,
        &mut b.sim,
        &urn("small"),
        b.session,
        "get",
        &[],
        PlacementHints::default(),
        Priority::FOREGROUND,
    )
    .unwrap();
    assert_eq!(placement, Placement::Local);
    b.sim.run();
    assert!(p.is_ready());
}

#[test]
fn prefetch_collection_hoards_members() {
    use rover_core::collection_object;

    let mut b = bed(LinkSpec::WAVELAN_2M);
    let members: Vec<Urn> = (0..6).map(|i| urn(&format!("doc{i}"))).collect();
    for (i, u) in members.iter().enumerate() {
        b.server.borrow_mut().put_object(
            RoverObject::new(u.clone(), "blob").with_field("body", &"d".repeat(2_000 + i * 100)),
        );
    }
    b.server
        .borrow_mut()
        .put_object(collection_object(urn("briefcase"), &members));

    let p =
        Client::prefetch_collection(&b.client, &mut b.sim, &urn("briefcase"), b.session).unwrap();
    b.sim.run();
    assert!(p.is_ready());
    // Everything is now readable offline.
    b.net.set_up(&mut b.sim, b.link, false);
    for u in &members {
        assert!(Client::is_cached(&b.client, u), "{u} not hoarded");
        let r = Client::import(&b.client, &mut b.sim, u, b.session, Priority::FOREGROUND).unwrap();
        b.sim.run_for(SimDuration::from_millis(50));
        assert!(r.poll().unwrap().from_cache);
    }
    // The index itself is also usable locally.
    let sz = Client::invoke_local(&b.client, &mut b.sim, &urn("briefcase"), "size", &[]).unwrap();
    b.sim.run_for(SimDuration::from_millis(50));
    assert_eq!(sz.poll().unwrap().value.as_int().unwrap(), 6);
}

#[test]
fn hoard_pins_survive_cache_pressure() {
    let mut cfg = ClientConfig::thinkpad(CLIENT, SERVER);
    cfg.cache_capacity = 25_000;
    let mut b = bed_with(LinkSpec::ETHERNET_10M, cfg);
    for i in 0..6 {
        b.server
            .borrow_mut()
            .put_object(counter_obj(&format!("o{i}")).with_field("pad", &"z".repeat(8_000)));
    }
    // Import o0 and hoard it.
    let p = Client::import(
        &b.client,
        &mut b.sim,
        &urn("o0"),
        b.session,
        Priority::NORMAL,
    )
    .unwrap();
    b.sim.run();
    assert!(p.is_ready());
    assert!(Client::set_hoarded(&b.client, &urn("o0"), true));

    // Blow through the capacity with five more imports.
    for i in 1..6 {
        let p = Client::import(
            &b.client,
            &mut b.sim,
            &urn(&format!("o{i}")),
            b.session,
            Priority::NORMAL,
        )
        .unwrap();
        b.sim.run();
        assert!(p.is_ready());
    }
    assert!(
        Client::is_cached(&b.client, &urn("o0")),
        "hoarded object survived"
    );
    let (objs, _) = Client::cache_usage(&b.client);
    assert!(objs < 6, "others were evicted");

    // Unpin: the next pressure wave may take it.
    assert!(Client::set_hoarded(&b.client, &urn("o0"), false));
    assert!(!Client::set_hoarded(&b.client, &urn("nonexistent"), true));
}
