//! Tests for the extension features: lossy-channel retransmission,
//! client crash recovery from the stable log, and server callbacks.

use std::cell::RefCell;
use std::rc::Rc;

use rover_core::{
    Client, ClientConfig, ClientEvent, Guarantees, OpStatus, Priority, ReexecuteResolver,
    RoverObject, Server, ServerConfig, Urn,
};
use rover_net::{LinkSpec, Net};
use rover_sim::{Sim, SimDuration};
use rover_wire::HostId;

const CLIENT: HostId = HostId(1);
const CLIENT2: HostId = HostId(3);
const SERVER: HostId = HostId(2);

fn counter(path: &str) -> RoverObject {
    RoverObject::new(
        Urn::parse(&format!("urn:rover:t/{path}")).unwrap(),
        "counter",
    )
    .with_code("proc add {k} {rover::set n [expr {[rover::get n 0] + $k}]}")
    .with_field("n", "0")
}

fn urn(path: &str) -> Urn {
    Urn::parse(&format!("urn:rover:t/{path}")).unwrap()
}

#[test]
fn lossy_channel_recovers_via_strike_retransmission() {
    let mut sim = Sim::new(99);
    let net = Net::new();
    let link = net.add_link(LinkSpec::WAVELAN_2M, CLIENT, SERVER);
    net.set_loss(link, 0.20); // a noisy wireless channel
    let server = Server::new(&net, ServerConfig::workstation(SERVER));
    server.borrow_mut().add_route(CLIENT, link);
    server
        .borrow_mut()
        .register_resolver("counter", Box::new(ReexecuteResolver));
    server.borrow_mut().put_object(counter("c"));

    let mut cfg = ClientConfig::thinkpad(CLIENT, SERVER);
    cfg.rto = SimDuration::from_secs(5);
    let client = Client::new(&mut sim, &net, cfg, vec![link]);
    let session = Client::create_session(&client, Guarantees::ALL, true);

    let p = Client::import(&client, &mut sim, &urn("c"), session, Priority::FOREGROUND).unwrap();
    sim.run_until(rover_sim::SimTime::from_secs(600));
    assert!(p.is_ready(), "import survived 20% loss");

    let mut handles = Vec::new();
    for _ in 0..10 {
        let h = Client::export(
            &client,
            &mut sim,
            &urn("c"),
            session,
            "add",
            &["1"],
            Priority::NORMAL,
        )
        .unwrap();
        handles.push(h);
        sim.run_for(SimDuration::from_secs(2));
    }
    sim.run_until(sim.now() + SimDuration::from_secs(3600));
    assert!(
        handles.iter().all(|h| h.committed.is_ready()),
        "all exports completed"
    );
    assert_eq!(
        server.borrow().get_object(&urn("c")).unwrap().field("n"),
        Some("10"),
        "exactly-once despite {} random losses / {} retransmits",
        sim.stats.counter("net.random_losses"),
        sim.stats.counter("client.retransmits"),
    );
    assert!(
        sim.stats.counter("net.random_losses") > 0,
        "the channel actually lost messages"
    );
}

#[test]
fn crash_recovery_reissues_queued_qrpcs() {
    let mut sim = Sim::new(7);
    let net = Net::new();
    let link = net.add_link(LinkSpec::CSLIP_14_4, CLIENT, SERVER);
    let server = Server::new(&net, ServerConfig::workstation(SERVER));
    server.borrow_mut().add_route(CLIENT, link);
    server
        .borrow_mut()
        .register_resolver("counter", Box::new(ReexecuteResolver));
    server.borrow_mut().put_object(counter("c"));

    let cfg = ClientConfig::thinkpad(CLIENT, SERVER);
    let client = Client::new(&mut sim, &net, cfg.clone(), vec![link]);
    let session = Client::create_session(&client, Guarantees::ALL, true);
    let p = Client::import(&client, &mut sim, &urn("c"), session, Priority::FOREGROUND).unwrap();
    sim.run();
    assert!(p.is_ready());

    // Disconnect and queue five updates; the log holds them durably.
    net.set_up(&mut sim, link, false);
    for _ in 0..5 {
        Client::export(
            &client,
            &mut sim,
            &urn("c"),
            session,
            "add",
            &["1"],
            Priority::NORMAL,
        )
        .unwrap();
        sim.run_for(SimDuration::from_secs(1));
    }
    assert_eq!(Client::log_len(&client), 5);

    // Crash: everything in memory is gone; only the log device remains.
    let store = Client::crash(&client);
    drop(client);
    sim.run_for(SimDuration::from_secs(60));

    // Reboot, recover, reconnect: the queued updates drain.
    let client = Client::recover(&mut sim, &net, cfg, vec![link], store);
    assert_eq!(Client::outstanding_count(&client), 5);
    assert_eq!(sim.stats.counter("client.recovered_qrpcs"), 5);
    net.set_up(&mut sim, link, true);
    sim.run_until(sim.now() + SimDuration::from_secs(600));
    assert_eq!(Client::outstanding_count(&client), 0);
    assert_eq!(
        server.borrow().get_object(&urn("c")).unwrap().field("n"),
        Some("5")
    );
}

#[test]
fn crash_recovery_is_exactly_once_even_if_ops_already_committed() {
    // Ops commit at the server, but the client crashes before
    // processing the replies: recovery re-sends them and the server's
    // dedup cache answers without re-executing.
    let mut sim = Sim::new(8);
    let net = Net::new();
    let link = net.add_link(LinkSpec::ETHERNET_10M, CLIENT, SERVER);
    let server = Server::new(&net, ServerConfig::workstation(SERVER));
    server.borrow_mut().add_route(CLIENT, link);
    server
        .borrow_mut()
        .register_resolver("counter", Box::new(ReexecuteResolver));
    server.borrow_mut().put_object(counter("c"));

    let cfg = ClientConfig::thinkpad(CLIENT, SERVER);
    let client = Client::new(&mut sim, &net, cfg.clone(), vec![link]);
    let session = Client::create_session(&client, Guarantees::ALL, true);
    let p = Client::import(&client, &mut sim, &urn("c"), session, Priority::FOREGROUND).unwrap();
    sim.run();
    assert!(p.is_ready());

    // Issue three exports and let them *reach the server* but crash
    // before the replies are consumed.
    for _ in 0..3 {
        Client::export(
            &client,
            &mut sim,
            &urn("c"),
            session,
            "add",
            &["1"],
            Priority::NORMAL,
        )
        .unwrap();
    }
    sim.run_for(SimDuration::from_millis(80)); // requests land, replies in flight
    assert_eq!(
        server.borrow().get_object(&urn("c")).unwrap().field("n"),
        Some("3")
    );
    let store = Client::crash(&client);
    drop(client);

    let client = Client::recover(&mut sim, &net, cfg, vec![link], store);
    sim.run_until(sim.now() + SimDuration::from_secs(60));
    assert_eq!(Client::outstanding_count(&client), 0);
    // Still exactly 3 — dedup replayed, never re-executed.
    assert_eq!(
        server.borrow().get_object(&urn("c")).unwrap().field("n"),
        Some("3")
    );
    assert!(sim.stats.counter("server.dedup_replay") >= 1);
}

#[test]
fn server_callbacks_invalidate_stale_caches() {
    let run = |callbacks: bool| -> (bool, u64) {
        let mut sim = Sim::new(5);
        let net = Net::new();
        let l1 = net.add_link(LinkSpec::ETHERNET_10M, CLIENT, SERVER);
        let l2 = net.add_link(LinkSpec::ETHERNET_10M, CLIENT2, SERVER);
        let mut scfg = ServerConfig::workstation(SERVER);
        scfg.callbacks = callbacks;
        let server = Server::new(&net, scfg);
        server.borrow_mut().add_route(CLIENT, l1);
        server.borrow_mut().add_route(CLIENT2, l2);
        server
            .borrow_mut()
            .register_resolver("counter", Box::new(ReexecuteResolver));
        server.borrow_mut().put_object(counter("c"));

        let writer = Client::new(
            &mut sim,
            &net,
            ClientConfig::thinkpad(CLIENT, SERVER),
            vec![l1],
        );
        let reader = Client::new(
            &mut sim,
            &net,
            ClientConfig::thinkpad(CLIENT2, SERVER),
            vec![l2],
        );
        let ws = Client::create_session(&writer, Guarantees::ALL, true);
        let rs = Client::create_session(&reader, Guarantees::NONE, false);

        let invalidations = Rc::new(RefCell::new(0u64));
        let k = invalidations.clone();
        Client::on_event(&reader, move |_s, e| {
            if matches!(e, ClientEvent::Invalidated { .. }) {
                *k.borrow_mut() += 1;
            }
        });

        // Both import; the reader caches version 1.
        for (c, s) in [(&writer, ws), (&reader, rs)] {
            let p = Client::import(c, &mut sim, &urn("c"), s, Priority::FOREGROUND).unwrap();
            sim.run();
            assert!(p.is_ready());
        }

        // The writer commits a new version.
        let h = Client::export(
            &writer,
            &mut sim,
            &urn("c"),
            ws,
            "add",
            &["7"],
            Priority::NORMAL,
        )
        .unwrap();
        sim.run();
        assert_eq!(h.committed.poll().unwrap().status, OpStatus::Ok);

        // The reader re-imports: with callbacks the stale copy was
        // invalidated, so this refetches the new version.
        let p = Client::import(&reader, &mut sim, &urn("c"), rs, Priority::FOREGROUND).unwrap();
        sim.run();
        let o = p.poll().unwrap();
        let saw_new = o.object.as_ref().and_then(|ob| ob.field("n")) == Some("7");
        assert_eq!(saw_new, !o.from_cache);
        let events = *invalidations.borrow();
        (saw_new, events)
    };

    let (fresh_with, events_with) = run(true);
    assert!(
        fresh_with,
        "callbacks force a refetch of the committed version"
    );
    assert_eq!(events_with, 1, "the reader's UI was notified");

    let (fresh_without, events_without) = run(false);
    assert!(
        !fresh_without,
        "without callbacks the stale copy is served (the paper's window)"
    );
    assert_eq!(events_without, 0);
}

#[test]
fn disconnected_reader_serves_stale_copy_despite_invalidation() {
    let mut sim = Sim::new(6);
    let net = Net::new();
    let l1 = net.add_link(LinkSpec::ETHERNET_10M, CLIENT, SERVER);
    let l2 = net.add_link(LinkSpec::ETHERNET_10M, CLIENT2, SERVER);
    let mut scfg = ServerConfig::workstation(SERVER);
    scfg.callbacks = true;
    let server = Server::new(&net, scfg);
    server.borrow_mut().add_route(CLIENT, l1);
    server.borrow_mut().add_route(CLIENT2, l2);
    server
        .borrow_mut()
        .register_resolver("counter", Box::new(ReexecuteResolver));
    server.borrow_mut().put_object(counter("c"));

    let writer = Client::new(
        &mut sim,
        &net,
        ClientConfig::thinkpad(CLIENT, SERVER),
        vec![l1],
    );
    let reader = Client::new(
        &mut sim,
        &net,
        ClientConfig::thinkpad(CLIENT2, SERVER),
        vec![l2],
    );
    let ws = Client::create_session(&writer, Guarantees::ALL, true);
    let rs = Client::create_session(&reader, Guarantees::NONE, false);
    for (c, s) in [(&writer, ws), (&reader, rs)] {
        let p = Client::import(c, &mut sim, &urn("c"), s, Priority::FOREGROUND).unwrap();
        sim.run();
        assert!(p.is_ready());
    }

    // Writer commits; reader receives the callback, *then* disconnects.
    let h = Client::export(
        &writer,
        &mut sim,
        &urn("c"),
        ws,
        "add",
        &["7"],
        Priority::NORMAL,
    )
    .unwrap();
    sim.run();
    assert!(h.committed.is_ready());
    net.set_up(&mut sim, l2, false);

    // Disconnected import: stale is better than blocked.
    let p = Client::import(&reader, &mut sim, &urn("c"), rs, Priority::FOREGROUND).unwrap();
    sim.run_for(SimDuration::from_secs(2));
    let o = p.poll().expect("served while disconnected");
    assert!(o.from_cache);
    assert_eq!(
        o.object.unwrap().field("n"),
        Some("0"),
        "knowingly stale copy"
    );
}

#[test]
fn authentication_gates_all_operations() {
    let mut sim = Sim::new(17);
    let net = Net::new();
    let link = net.add_link(LinkSpec::ETHERNET_10M, CLIENT, SERVER);
    let server = Server::new(&net, ServerConfig::workstation(SERVER));
    server.borrow_mut().add_route(CLIENT, link);
    server.borrow_mut().put_object(counter("c"));
    server.borrow_mut().require_auth(&[0xC0FFEE, 0xBEEF]);

    // Wrong token: every operation is rejected.
    let mut bad_cfg = ClientConfig::thinkpad(CLIENT, SERVER);
    bad_cfg.auth_token = 0xBAD;
    let bad = Client::new(&mut sim, &net, bad_cfg, vec![link]);
    let bs = Client::create_session(&bad, Guarantees::ALL, true);
    let p = Client::import(&bad, &mut sim, &urn("c"), bs, Priority::FOREGROUND).unwrap();
    sim.run();
    assert_eq!(p.poll().unwrap().status, OpStatus::Rejected);
    assert_eq!(sim.stats.counter("server.auth_rejected"), 1);

    // Correct token: admitted. (Re-register the host with a fresh
    // client; the latest registration wins.)
    let mut good_cfg = ClientConfig::thinkpad(CLIENT, SERVER);
    good_cfg.auth_token = 0xC0FFEE;
    let good = Client::new(&mut sim, &net, good_cfg, vec![link]);
    let gs = Client::create_session(&good, Guarantees::ALL, true);
    let p = Client::import(&good, &mut sim, &urn("c"), gs, Priority::FOREGROUND).unwrap();
    sim.run();
    assert_eq!(p.poll().unwrap().status, OpStatus::Ok);

    // Authenticated exports execute; unauthenticated would not have.
    let h = Client::export(
        &good,
        &mut sim,
        &urn("c"),
        gs,
        "add",
        &["2"],
        Priority::NORMAL,
    )
    .unwrap();
    sim.run();
    assert_eq!(h.committed.poll().unwrap().status, OpStatus::Ok);
    assert_eq!(
        server.borrow().get_object(&urn("c")).unwrap().field("n"),
        Some("2")
    );
}

#[test]
fn server_store_checkpoint_and_restart() {
    let mut sim = Sim::new(21);
    let net = Net::new();
    let link = net.add_link(LinkSpec::ETHERNET_10M, CLIENT, SERVER);
    let server = Server::new(&net, ServerConfig::workstation(SERVER));
    server.borrow_mut().add_route(CLIENT, link);
    server
        .borrow_mut()
        .register_resolver("counter", Box::new(ReexecuteResolver));
    server
        .borrow_mut()
        .put_object(counter("a").with_field("n", "3"));
    server
        .borrow_mut()
        .put_object(counter("b").with_field("n", "9"));

    let client = Client::new(
        &mut sim,
        &net,
        ClientConfig::thinkpad(CLIENT, SERVER),
        vec![link],
    );
    let session = Client::create_session(&client, Guarantees::ALL, true);
    let p = Client::import(&client, &mut sim, &urn("a"), session, Priority::FOREGROUND).unwrap();
    sim.run();
    assert!(p.is_ready());
    // Commit one export so versions advance past 1.
    let h = Client::export(
        &client,
        &mut sim,
        &urn("a"),
        session,
        "add",
        &["4"],
        Priority::NORMAL,
    )
    .unwrap();
    sim.run();
    assert!(h.committed.is_ready());

    // Checkpoint, "restart" into a brand-new server on the same host.
    let snapshot = server.borrow().export_store();
    drop(server);
    let server2 = Server::new(&net, ServerConfig::workstation(SERVER));
    server2.borrow_mut().add_route(CLIENT, link);
    server2
        .borrow_mut()
        .register_resolver("counter", Box::new(ReexecuteResolver));
    assert_eq!(server2.borrow_mut().import_store(&snapshot).unwrap(), 2);

    {
        let sv = server2.borrow();
        assert_eq!(sv.get_object(&urn("a")).unwrap().field("n"), Some("7"));
        assert_eq!(sv.get_object(&urn("b")).unwrap().field("n"), Some("9"));
        assert!(
            sv.get_object(&urn("a")).unwrap().version.0 >= 2,
            "versions preserved"
        );
    }

    // The client keeps working against the restarted server, and its
    // cached base version still lines up (no spurious conflict) — and
    // the restored write-ordering floor admits the next ordered export.
    let h = Client::export(
        &client,
        &mut sim,
        &urn("a"),
        session,
        "add",
        &["1"],
        Priority::NORMAL,
    )
    .unwrap();
    sim.run_until(sim.now() + SimDuration::from_secs(1000));
    assert!(h.committed.is_ready(), "commit never arrived");
    assert_eq!(h.committed.poll().unwrap().status, OpStatus::Ok);
    assert_eq!(
        server2.borrow().get_object(&urn("a")).unwrap().field("n"),
        Some("8")
    );
}

#[test]
fn trace_records_protocol_events() {
    let mut sim = Sim::new(23);
    sim.trace.set_enabled(true);
    let net = Net::new();
    let link = net.add_link(LinkSpec::WAVELAN_2M, CLIENT, SERVER);
    let server = Server::new(&net, ServerConfig::workstation(SERVER));
    server.borrow_mut().add_route(CLIENT, link);
    server.borrow_mut().put_object(counter("c"));
    let client = Client::new(
        &mut sim,
        &net,
        ClientConfig::thinkpad(CLIENT, SERVER),
        vec![link],
    );
    let session = Client::create_session(&client, Guarantees::ALL, true);

    let p = Client::import(&client, &mut sim, &urn("c"), session, Priority::FOREGROUND).unwrap();
    net.set_up(&mut sim, link, false);
    net.set_up(&mut sim, link, true);
    sim.run();
    assert!(p.is_ready());

    let dump = sim.trace.dump();
    assert!(dump.contains("issue req=1"), "{dump}");
    assert!(dump.contains("complete req=1"), "{dump}");
    assert!(dump.contains("link 0 down"), "{dump}");
    assert!(dump.contains("link 0 up"), "{dump}");
    assert!(sim.trace.with_tag("qrpc").count() >= 2);
}

#[test]
fn polling_refreshes_stale_caches_and_stops_on_drop() {
    let mut sim = Sim::new(29);
    let net = Net::new();
    let l1 = net.add_link(LinkSpec::ETHERNET_10M, CLIENT, SERVER);
    let l2 = net.add_link(LinkSpec::ETHERNET_10M, CLIENT2, SERVER);
    let server = Server::new(&net, ServerConfig::workstation(SERVER));
    server.borrow_mut().add_route(CLIENT, l1);
    server.borrow_mut().add_route(CLIENT2, l2);
    server
        .borrow_mut()
        .register_resolver("counter", Box::new(ReexecuteResolver));
    server.borrow_mut().put_object(counter("c"));

    let writer = Client::new(
        &mut sim,
        &net,
        ClientConfig::thinkpad(CLIENT, SERVER),
        vec![l1],
    );
    let reader = Client::new(
        &mut sim,
        &net,
        ClientConfig::thinkpad(CLIENT2, SERVER),
        vec![l2],
    );
    let ws = Client::create_session(&writer, Guarantees::ALL, true);
    let rs = Client::create_session(&reader, Guarantees::NONE, false);
    for (c, s) in [(&writer, ws), (&reader, rs)] {
        let p = Client::import(c, &mut sim, &urn("c"), s, Priority::FOREGROUND).unwrap();
        sim.run();
        assert!(p.is_ready());
    }

    // The reader polls every 10 s.
    let guard = Client::poll_object(&reader, &mut sim, &urn("c"), rs, SimDuration::from_secs(10));

    // The writer commits; within one poll period the reader's cache
    // catches up without any explicit read.
    let h = Client::export(
        &writer,
        &mut sim,
        &urn("c"),
        ws,
        "add",
        &["5"],
        Priority::NORMAL,
    )
    .unwrap();
    sim.run_for(SimDuration::from_secs(12));
    assert!(h.committed.is_ready());
    let cached = Client::cached_object(&reader, &urn("c"), false).unwrap();
    assert_eq!(cached.field("n"), Some("5"), "poll refreshed the cache");
    let polls_before = sim.stats.counter("client.polls");
    assert!(polls_before >= 1);

    // Dropping the guard stops the loop.
    drop(guard);
    sim.run_for(SimDuration::from_secs(60));
    let polls_after = sim.stats.counter("client.polls");
    assert!(
        polls_after <= polls_before + 1,
        "polling kept running after drop: {polls_before} -> {polls_after}"
    );
    sim.run();
}

#[test]
fn multiple_home_servers_routed_by_authority() {
    // "Every object has a home server": the mail authority lives on one
    // host, the calendar authority on another, each behind its own
    // link; the client's scheduler routes each QRPC to the right one.
    let mut sim = Sim::new(41);
    let net = Net::new();
    let mail_host = HostId(10);
    let cal_host = HostId(11);
    let l_mail = net.add_link(LinkSpec::WAVELAN_2M, CLIENT, mail_host);
    let l_cal = net.add_link(LinkSpec::CSLIP_14_4, CLIENT, cal_host);

    let mail_sv = Server::new(&net, ServerConfig::workstation(mail_host));
    mail_sv.borrow_mut().add_route(CLIENT, l_mail);
    mail_sv
        .borrow_mut()
        .register_resolver("counter", Box::new(ReexecuteResolver));
    mail_sv.borrow_mut().put_object(
        RoverObject::new(Urn::parse("urn:rover:mail/box").unwrap(), "counter")
            .with_code("proc add {k} {rover::set n [expr {[rover::get n 0] + $k}]}")
            .with_field("n", "0"),
    );

    let cal_sv = Server::new(&net, ServerConfig::workstation(cal_host));
    cal_sv.borrow_mut().add_route(CLIENT, l_cal);
    cal_sv
        .borrow_mut()
        .register_resolver("counter", Box::new(ReexecuteResolver));
    cal_sv.borrow_mut().put_object(
        RoverObject::new(Urn::parse("urn:rover:cal/team").unwrap(), "counter")
            .with_code("proc add {k} {rover::set n [expr {[rover::get n 0] + $k}]}")
            .with_field("n", "100"),
    );

    let mut cfg = ClientConfig::thinkpad(CLIENT, mail_host);
    cfg.authorities.insert("mail".into(), mail_host);
    cfg.authorities.insert("cal".into(), cal_host);
    let client = Client::new(&mut sim, &net, cfg, vec![l_mail, l_cal]);
    let session = Client::create_session(&client, Guarantees::ALL, true);

    // Both imports resolve, each from its own server over its own link.
    let pm = Client::import(
        &client,
        &mut sim,
        &Urn::parse("urn:rover:mail/box").unwrap(),
        session,
        Priority::FOREGROUND,
    )
    .unwrap();
    let pc = Client::import(
        &client,
        &mut sim,
        &Urn::parse("urn:rover:cal/team").unwrap(),
        session,
        Priority::FOREGROUND,
    )
    .unwrap();
    sim.run();
    assert_eq!(pm.poll().unwrap().object.unwrap().field("n"), Some("0"));
    assert_eq!(pc.poll().unwrap().object.unwrap().field("n"), Some("100"));
    // The WaveLAN import finished long before the modem one.
    assert!(pm.resolved_at().unwrap() < pc.resolved_at().unwrap());

    // Exports land at the right servers.
    let hm = Client::export(
        &client,
        &mut sim,
        &Urn::parse("urn:rover:mail/box").unwrap(),
        session,
        "add",
        &["1"],
        Priority::NORMAL,
    )
    .unwrap();
    let hc = Client::export(
        &client,
        &mut sim,
        &Urn::parse("urn:rover:cal/team").unwrap(),
        session,
        "add",
        &["2"],
        Priority::NORMAL,
    )
    .unwrap();
    sim.run();
    assert!(hm.committed.is_ready() && hc.committed.is_ready());
    assert_eq!(
        mail_sv
            .borrow()
            .get_object(&Urn::parse("urn:rover:mail/box").unwrap())
            .unwrap()
            .field("n"),
        Some("1")
    );
    assert_eq!(
        cal_sv
            .borrow()
            .get_object(&Urn::parse("urn:rover:cal/team").unwrap())
            .unwrap()
            .field("n"),
        Some("102")
    );
}

#[test]
fn partial_connectivity_to_one_of_two_servers() {
    // Only the mail server's link is up: mail QRPCs flow, calendar
    // QRPCs queue, and nothing deadlocks. On reconnect the calendar
    // queue drains.
    let mut sim = Sim::new(43);
    let net = Net::new();
    let mail_host = HostId(10);
    let cal_host = HostId(11);
    let l_mail = net.add_link(LinkSpec::WAVELAN_2M, CLIENT, mail_host);
    let l_cal = net.add_link(LinkSpec::WAVELAN_2M, CLIENT, cal_host);

    for (host, link, path, n0) in [
        (mail_host, l_mail, "mail/box", "0"),
        (cal_host, l_cal, "cal/team", "100"),
    ] {
        let sv = Server::new(&net, ServerConfig::workstation(host));
        sv.borrow_mut().add_route(CLIENT, link);
        sv.borrow_mut().put_object(
            RoverObject::new(Urn::parse(&format!("urn:rover:{path}")).unwrap(), "counter")
                .with_field("n", n0),
        );
        // Leak the server handle so it stays alive for the test.
        std::mem::forget(sv);
    }

    let mut cfg = ClientConfig::thinkpad(CLIENT, mail_host);
    cfg.authorities.insert("mail".into(), mail_host);
    cfg.authorities.insert("cal".into(), cal_host);
    cfg.rto = SimDuration::from_secs(10);
    let client = Client::new(&mut sim, &net, cfg, vec![l_mail, l_cal]);
    let session = Client::create_session(&client, Guarantees::ALL, true);

    net.set_up(&mut sim, l_cal, false);
    let pm = Client::import(
        &client,
        &mut sim,
        &Urn::parse("urn:rover:mail/box").unwrap(),
        session,
        Priority::FOREGROUND,
    )
    .unwrap();
    let pc = Client::import(
        &client,
        &mut sim,
        &Urn::parse("urn:rover:cal/team").unwrap(),
        session,
        Priority::FOREGROUND,
    )
    .unwrap();
    sim.run_for(SimDuration::from_secs(60));
    assert!(pm.is_ready(), "reachable server answered");
    assert!(!pc.is_ready(), "unreachable server's QRPC still queued");

    net.set_up(&mut sim, l_cal, true);
    sim.run_until(sim.now() + SimDuration::from_secs(120));
    assert!(
        pc.is_ready(),
        "queued QRPC drained once its server was reachable"
    );
    assert_eq!(pc.poll().unwrap().object.unwrap().field("n"), Some("100"));
}
