//! Chaos-plane integration tests: retransmission backoff with a retry
//! budget, graceful give-up, and at-most-once execution under seeded
//! link faults with dedup-eviction pressure.

use std::cell::RefCell;
use std::rc::Rc;

use rover_core::{
    Client, ClientConfig, ClientEvent, Guarantees, OpStatus, Priority, ReexecuteResolver,
    RoverObject, Server, ServerConfig, Urn,
};
use rover_net::{FaultSpec, LinkSpec, Net};
use rover_sim::{Sim, SimDuration};
use rover_wire::HostId;

const CLIENT: HostId = HostId(1);
const SERVER: HostId = HostId(2);

fn counter(path: &str) -> RoverObject {
    RoverObject::new(
        Urn::parse(&format!("urn:rover:t/{path}")).unwrap(),
        "counter",
    )
    .with_code("proc add {k} {rover::set n [expr {[rover::get n 0] + $k}]}")
    .with_field("n", "0")
}

fn urn(path: &str) -> Urn {
    Urn::parse(&format!("urn:rover:t/{path}")).unwrap()
}

#[test]
fn retry_budget_exhaustion_resolves_unreachable() {
    let mut sim = Sim::new(7);
    let net = Net::new();
    let link = net.add_link(LinkSpec::WAVELAN_2M, CLIENT, SERVER);
    let server = Server::new(&net, ServerConfig::workstation(SERVER));
    server.borrow_mut().add_route(CLIENT, link);
    server
        .borrow_mut()
        .register_resolver("counter", Box::new(ReexecuteResolver));
    server.borrow_mut().put_object(counter("c"));

    let mut cfg = ClientConfig::thinkpad(CLIENT, SERVER);
    cfg.rto = SimDuration::from_secs(5);
    cfg.rto_max = SimDuration::from_secs(40);
    cfg.retry_budget = Some(2);
    let client = Client::new(&mut sim, &net, cfg, vec![link]);
    let session = Client::create_session(&client, Guarantees::ALL, true);

    // Warm the cache over a healthy link, then black-hole it.
    let p = Client::import(&client, &mut sim, &urn("c"), session, Priority::FOREGROUND).unwrap();
    sim.run();
    assert_eq!(p.poll().unwrap().status, OpStatus::Ok);
    net.install_faults(
        &mut sim,
        link,
        FaultSpec {
            drop_prob: 1.0,
            ..FaultSpec::seeded(7)
        },
    );

    let gave_up: Rc<RefCell<Vec<ClientEvent>>> = Rc::new(RefCell::new(Vec::new()));
    let sink = gave_up.clone();
    Client::on_event(&client, move |_sim, ev| {
        if matches!(ev, ClientEvent::Unreachable { .. }) {
            sink.borrow_mut().push(ev.clone());
        }
    });

    let h = Client::export(
        &client,
        &mut sim,
        &urn("c"),
        session,
        "add",
        &["1"],
        Priority::NORMAL,
    )
    .unwrap();
    sim.run();

    // The client gave up gracefully instead of probing forever (which
    // would keep `sim.run` alive indefinitely).
    let outcome = h.committed.poll().expect("resolved after give-up");
    assert_eq!(outcome.status, OpStatus::Unreachable);
    assert_eq!(sim.stats.counter("client.retry_exhausted"), 1);
    assert_eq!(sim.stats.counter("client.retransmits"), 2, "budget honored");
    assert_eq!(gave_up.borrow().len(), 1, "Unreachable event emitted");
    assert_eq!(Client::outstanding_count(&client), 0);
    assert_eq!(
        Client::log_len(&client),
        0,
        "abandoned request retired from the stable log"
    );
    // The server never executed it.
    assert_eq!(
        server.borrow().get_object(&urn("c")).unwrap().field("n"),
        Some("0")
    );
}

#[test]
fn rto_backoff_spaces_probes_exponentially() {
    // With a black-holed link, retransmissions happen every 2 probes;
    // backoff doubles the probe interval per retransmission, so a
    // larger budget takes disproportionately longer to exhaust than a
    // fixed-interval chain would.
    let run = |backoff: f64| {
        let mut sim = Sim::new(7);
        let net = Net::new();
        let link = net.add_link(LinkSpec::WAVELAN_2M, CLIENT, SERVER);
        let server = Server::new(&net, ServerConfig::workstation(SERVER));
        server.borrow_mut().add_route(CLIENT, link);
        server.borrow_mut().put_object(counter("c"));
        let mut cfg = ClientConfig::thinkpad(CLIENT, SERVER);
        cfg.rto = SimDuration::from_secs(5);
        cfg.rto_backoff = backoff;
        cfg.rto_max = SimDuration::from_secs(3600);
        cfg.retry_budget = Some(3);
        let client = Client::new(&mut sim, &net, cfg, vec![link]);
        let session = Client::create_session(&client, Guarantees::ALL, true);
        let p =
            Client::import(&client, &mut sim, &urn("c"), session, Priority::FOREGROUND).unwrap();
        sim.run();
        assert_eq!(p.poll().unwrap().status, OpStatus::Ok);
        net.install_faults(
            &mut sim,
            link,
            FaultSpec {
                drop_prob: 1.0,
                ..FaultSpec::seeded(9)
            },
        );
        let t0 = sim.now();
        let h = Client::export(
            &client,
            &mut sim,
            &urn("c"),
            session,
            "add",
            &["1"],
            Priority::NORMAL,
        )
        .unwrap();
        sim.run();
        assert_eq!(h.committed.poll().unwrap().status, OpStatus::Unreachable);
        sim.now().since(t0)
    };
    let fixed = run(1.0);
    let backed_off = run(2.0);
    assert!(
        backed_off > fixed,
        "exponential backoff must stretch the probe chain: {backed_off:?} vs {fixed:?}"
    );
}

#[test]
fn exactly_once_under_chaos_with_dedup_pressure() {
    // Seeded drop + corruption + duplication, a dedup cache far smaller
    // than the number of in-flight requests, and retransmissions: the
    // acknowledgement floor must keep eviction safe, so no request ever
    // re-executes and no committed op is lost.
    let mut sim = Sim::new(1995);
    let net = Net::new();
    let link = net.add_link(LinkSpec::WAVELAN_2M, CLIENT, SERVER);
    let mut scfg = ServerConfig::workstation(SERVER);
    scfg.dedup_capacity = 2;
    let server = Server::new(&net, scfg);
    server.borrow_mut().add_route(CLIENT, link);
    server
        .borrow_mut()
        .register_resolver("counter", Box::new(ReexecuteResolver));
    server.borrow_mut().put_object(counter("c"));

    let mut cfg = ClientConfig::thinkpad(CLIENT, SERVER);
    cfg.rto = SimDuration::from_secs(5);
    cfg.rto_max = SimDuration::from_secs(80);
    let client = Client::new(&mut sim, &net, cfg, vec![link]);
    let session = Client::create_session(&client, Guarantees::ALL, true);

    let p = Client::import(&client, &mut sim, &urn("c"), session, Priority::FOREGROUND).unwrap();
    sim.run();
    assert_eq!(p.poll().unwrap().status, OpStatus::Ok);

    net.install_faults(
        &mut sim,
        link,
        FaultSpec {
            drop_prob: 0.25,
            corrupt_prob: 0.05,
            dup_prob: 0.15,
            reorder_jitter: SimDuration::from_millis(30),
            ..FaultSpec::seeded(4242)
        },
    );

    let mut handles = Vec::new();
    for _ in 0..30 {
        let h = Client::export(
            &client,
            &mut sim,
            &urn("c"),
            session,
            "add",
            &["1"],
            Priority::NORMAL,
        )
        .unwrap();
        handles.push(h);
        sim.run_for(SimDuration::from_millis(800));
    }
    sim.run();

    assert!(
        handles.iter().all(|h| h.committed.is_ready()),
        "all exports decided"
    );
    assert_eq!(
        server.borrow().get_object(&urn("c")).unwrap().field("n"),
        Some("30"),
        "exactly-once: {} faults, {} retransmits, {} dup replies",
        sim.stats.counter("net.faults_injected.drop")
            + sim.stats.counter("net.faults_injected.corrupt")
            + sim.stats.counter("net.faults_injected.dup"),
        sim.stats.counter("client.retransmits"),
        sim.stats.counter("client.duplicate_replies"),
    );
    assert_eq!(
        sim.stats.counter("server.dedup_miss_reexec"),
        0,
        "no evicted-entry re-execution"
    );
    assert!(
        sim.stats.counter("net.corrupt_rejected")
            >= sim.stats.counter("net.faults_injected.corrupt"),
        "every corrupted frame rejected by checksum"
    );
    assert!(
        sim.stats.counter("client.retransmits") > 0,
        "chaos actually forced retransmissions"
    );
}
