//! Server edge cases through the public API: bad methods, exec errors,
//! missing objects, malformed operations, dedup capacity pressure.

use rover_core::{
    Client, ClientConfig, Guarantees, OpStatus, Priority, ReexecuteResolver, RoverObject, Server,
    ServerConfig, Urn,
};
use rover_net::{LinkSpec, Net};
use rover_sim::Sim;
use rover_wire::HostId;

const CLIENT: HostId = HostId(1);
const SERVER: HostId = HostId(2);

struct Rig {
    sim: Sim,
    server: rover_core::ServerRef,
    client: rover_core::ClientRef,
    session: rover_wire::SessionId,
}

fn rig() -> Rig {
    let mut sim = Sim::new(3);
    let net = Net::new();
    let link = net.add_link(LinkSpec::ETHERNET_10M, CLIENT, SERVER);
    let server = Server::new(&net, ServerConfig::workstation(SERVER));
    server.borrow_mut().add_route(CLIENT, link);
    server
        .borrow_mut()
        .register_resolver("counter", Box::new(ReexecuteResolver));
    let client = Client::new(
        &mut sim,
        &net,
        ClientConfig::thinkpad(CLIENT, SERVER),
        vec![link],
    );
    let session = Client::create_session(&client, Guarantees::ALL, true);
    Rig {
        sim,
        server,
        client,
        session,
    }
}

fn urn(p: &str) -> Urn {
    Urn::parse(&format!("urn:rover:t/{p}")).unwrap()
}

fn obj(p: &str, code: &str) -> RoverObject {
    RoverObject::new(urn(p), "counter")
        .with_code(code)
        .with_field("n", "0")
}

#[test]
fn export_of_unknown_method_reports_no_such_method() {
    let mut r = rig();
    r.server.borrow_mut().put_object(obj("c", "proc ok {} {}"));
    let p = Client::import(
        &r.client,
        &mut r.sim,
        &urn("c"),
        r.session,
        Priority::NORMAL,
    )
    .unwrap();
    r.sim.run();
    assert!(p.is_ready());
    // The local apply fails first — the API rejects before queueing.
    match Client::export(
        &r.client,
        &mut r.sim,
        &urn("c"),
        r.session,
        "missing",
        &[],
        Priority::NORMAL,
    ) {
        Err(rover_core::RoverError::NoSuchMethod(_)) => {}
        Err(e) => panic!("unexpected error {e}"),
        Ok(_) => panic!("export of missing method must fail locally"),
    }
    // Nothing was queued.
    assert_eq!(Client::outstanding_count(&r.client), 0);
}

#[test]
fn remote_invoke_of_unknown_method_is_a_server_status() {
    let mut r = rig();
    r.server
        .borrow_mut()
        .put_object(obj("c", "proc ok {} {return fine}"));
    let p = Client::invoke_remote(
        &r.client,
        &mut r.sim,
        &urn("c"),
        r.session,
        "missing",
        &[],
        Priority::NORMAL,
    )
    .unwrap();
    r.sim.run();
    assert_eq!(p.poll().unwrap().status, OpStatus::NoSuchMethod);
}

#[test]
fn server_side_script_error_is_exec_error() {
    let mut r = rig();
    r.server
        .borrow_mut()
        .put_object(obj("c", "proc boom {} {error kapow}"));
    let p = Client::invoke_remote(
        &r.client,
        &mut r.sim,
        &urn("c"),
        r.session,
        "boom",
        &[],
        Priority::NORMAL,
    )
    .unwrap();
    r.sim.run();
    assert_eq!(p.poll().unwrap().status, OpStatus::ExecError);
    // The server object is unchanged (failed methods roll back).
    assert_eq!(
        r.server.borrow().get_object(&urn("c")).unwrap().field("n"),
        Some("0")
    );
}

#[test]
fn budget_exhaustion_at_server_is_contained() {
    let mut r = rig();
    r.server
        .borrow_mut()
        .put_object(obj("c", "proc spin {} {while {1} {}}"));
    let p = Client::invoke_remote(
        &r.client,
        &mut r.sim,
        &urn("c"),
        r.session,
        "spin",
        &[],
        Priority::NORMAL,
    )
    .unwrap();
    r.sim.run();
    // The runaway RDO was killed by its budget; the server answered.
    assert_eq!(p.poll().unwrap().status, OpStatus::ExecError);

    // And the server still serves other requests afterwards.
    let p2 = Client::ping(&r.client, &mut r.sim, r.session, Priority::NORMAL);
    r.sim.run();
    assert_eq!(p2.poll().unwrap().status, OpStatus::Ok);
}

#[test]
fn invoke_on_missing_object() {
    let mut r = rig();
    let p = Client::invoke_remote(
        &r.client,
        &mut r.sim,
        &urn("ghost"),
        r.session,
        "m",
        &[],
        Priority::NORMAL,
    )
    .unwrap();
    r.sim.run();
    assert_eq!(p.poll().unwrap().status, OpStatus::NoSuchObject);
}

#[test]
fn dedup_capacity_pressure_still_behaves() {
    // A tiny dedup cache forces evictions; without retransmissions the
    // results stay exactly-once.
    let mut sim = Sim::new(4);
    let net = Net::new();
    let link = net.add_link(LinkSpec::ETHERNET_10M, CLIENT, SERVER);
    let mut scfg = ServerConfig::workstation(SERVER);
    scfg.dedup_capacity = 4;
    let server = Server::new(&net, scfg);
    server.borrow_mut().add_route(CLIENT, link);
    server
        .borrow_mut()
        .register_resolver("counter", Box::new(ReexecuteResolver));
    server.borrow_mut().put_object(obj(
        "c",
        "proc add {k} {rover::set n [expr {[rover::get n 0] + $k}]}",
    ));
    let client = Client::new(
        &mut sim,
        &net,
        ClientConfig::thinkpad(CLIENT, SERVER),
        vec![link],
    );
    let session = Client::create_session(&client, Guarantees::ALL, true);
    let p = Client::import(&client, &mut sim, &urn("c"), session, Priority::NORMAL).unwrap();
    sim.run();
    assert!(p.is_ready());
    for _ in 0..20 {
        let h = Client::export(
            &client,
            &mut sim,
            &urn("c"),
            session,
            "add",
            &["1"],
            Priority::NORMAL,
        )
        .unwrap();
        sim.run();
        let st = h.committed.poll().unwrap().status;
        assert!(st == OpStatus::Ok || st == OpStatus::Resolved);
    }
    assert_eq!(
        server.borrow().get_object(&urn("c")).unwrap().field("n"),
        Some("20")
    );
}

#[test]
fn export_rollback_preserves_tentative_consistency() {
    // A method that errors against *current server state* (but
    // succeeded locally against a stale base) must not corrupt the
    // server object.
    let mut r = rig();
    r.server
        .borrow_mut()
        .put_object(RoverObject::new(urn("c"), "strict").with_code(
            "proc claim {who} {
                     if {[rover::has owner]} {error \"already claimed\"}
                     rover::set owner $who
                 }",
        ));
    let p = Client::import(
        &r.client,
        &mut r.sim,
        &urn("c"),
        r.session,
        Priority::NORMAL,
    )
    .unwrap();
    r.sim.run();
    assert!(p.is_ready());

    // Someone else claims it at the server, bumping the version.
    {
        let mut sv = r.server.borrow_mut();
        let mut cur = sv.get_object(&urn("c")).unwrap().clone();
        cur.fields.insert("owner".into(), "eve".into());
        cur.version = rover_wire::Version(cur.version.0 + 1);
        sv.put_object(cur);
    }

    // Our claim succeeds locally (stale base) but conflicts at the
    // server; the "strict" type has no resolver → Conflict reflected.
    let h = Client::export(
        &r.client,
        &mut r.sim,
        &urn("c"),
        r.session,
        "claim",
        &["alice"],
        Priority::NORMAL,
    )
    .unwrap();
    r.sim.run();
    assert_eq!(h.committed.poll().unwrap().status, OpStatus::Conflict);
    assert_eq!(
        r.server
            .borrow()
            .get_object(&urn("c"))
            .unwrap()
            .field("owner"),
        Some("eve")
    );
    // The client's committed copy now shows the server's truth.
    let committed = Client::cached_object(&r.client, &urn("c"), false).unwrap();
    assert_eq!(committed.field("owner"), Some("eve"));
}
