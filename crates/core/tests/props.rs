//! Property tests for the toolkit core: URN validation, object wire
//! round-trips, RDO field semantics, and end-to-end exactly-once under
//! randomized connectivity.

use proptest::prelude::*;

use rover_core::{
    Client, ClientConfig, Guarantees, ReexecuteResolver, RoverObject, Server, ServerConfig, Urn,
};
use rover_net::{LinkSpec, Net};
use rover_script::Budget;
use rover_sim::{Sim, SimDuration};
use rover_wire::{HostId, Priority, Version, Wire};

proptest! {
    #[test]
    fn urn_roundtrips(auth in "[a-z][a-z0-9.-]{0,10}", path in "[a-z0-9/~._-]{0,24}") {
        // Normalize: no leading/trailing slash artifacts in this space.
        let urn = Urn::new(&auth, &path).unwrap();
        let back = Urn::parse(urn.as_str()).unwrap();
        prop_assert_eq!(back.authority(), auth);
        prop_assert_eq!(back.path(), path);
    }

    #[test]
    fn object_wire_roundtrip(
        fields in proptest::collection::btree_map("[a-z0-9_]{1,12}", "[ -~]{0,80}", 0..12),
        code in "[ -~\\n]{0,200}",
        version in any::<u64>(),
    ) {
        let mut obj = RoverObject::new(Urn::parse("urn:rover:p/t").unwrap(), "t");
        obj.fields = fields.into_iter().collect();
        obj.code = code;
        obj.version = Version(version);
        let back = RoverObject::from_bytes(&obj.to_bytes()).unwrap();
        prop_assert_eq!(back, obj);
    }

    #[test]
    fn rdo_set_get_is_identity(key in "[a-z]{1,10}", val in "[a-zA-Z0-9 ]{0,40}") {
        let mut obj = RoverObject::new(Urn::parse("urn:rover:p/t").unwrap(), "t")
            .with_code("proc put {k v} {rover::set $k $v}\nproc get {k} {rover::get $k}");
        obj.run_method("put", &[rover_script::Value::str(&key), rover_script::Value::str(&val)], Budget::default())
            .unwrap();
        let run = obj
            .run_method("get", &[rover_script::Value::str(&key)], Budget::default())
            .unwrap();
        prop_assert_eq!(run.result.as_str(), val);
    }

    // End-to-end invariant: no matter how connectivity flaps, every
    // queued increment is applied exactly once and all promises settle.
    #[test]
    fn exactly_once_under_random_connectivity(
        ops in 1usize..12,
        flaps in proptest::collection::vec((1u64..20, 1u64..20), 0..6),
        seed in 0u64..1000,
    ) {
        let mut sim = Sim::new(seed);
        let net = Net::new();
        let (ch, sh) = (HostId(1), HostId(2));
        let link = net.add_link(LinkSpec::CSLIP_14_4, ch, sh);
        let server = Server::new(&net, ServerConfig::workstation(sh));
        server.borrow_mut().add_route(ch, link);
        server.borrow_mut().register_resolver("counter", Box::new(ReexecuteResolver));
        let urn = Urn::parse("urn:rover:p/ctr").unwrap();
        server.borrow_mut().put_object(
            RoverObject::new(urn.clone(), "counter")
                .with_code("proc add {k} {rover::set n [expr {[rover::get n 0] + $k}]}")
                .with_field("n", "0"),
        );
        let mut cfg = ClientConfig::thinkpad(ch, sh);
        cfg.rto = SimDuration::from_secs(10);
        let client = Client::new(&mut sim, &net, cfg, vec![link]);
        let session = Client::create_session(&client, Guarantees::ALL, true);

        let p = Client::import(&client, &mut sim, &urn, session, Priority::FOREGROUND).unwrap();
        sim.run();
        prop_assert!(p.is_ready());

        // Schedule the connectivity flaps.
        let mut t = sim.now();
        for (up_s, down_s) in &flaps {
            t += SimDuration::from_secs(*up_s);
            let net2 = net.clone();
            sim.schedule_at(t, move |sim| net2.set_up(sim, link, false));
            t += SimDuration::from_secs(*down_s);
            let net2 = net.clone();
            sim.schedule_at(t, move |sim| net2.set_up(sim, link, true));
        }

        // Issue the increments, spaced out.
        let mut handles = Vec::new();
        for _ in 0..ops {
            let h = Client::export(
                &client, &mut sim, &urn, session, "add", &["1"], Priority::NORMAL,
            )
            .unwrap();
            handles.push(h);
            sim.run_for(SimDuration::from_secs(3));
        }
        sim.run();

        prop_assert!(handles.iter().all(|h| h.committed.is_ready()));
        prop_assert_eq!(Client::outstanding_count(&client), 0);
        let sv = server.borrow();
        let n = sv.get_object(&urn).unwrap().field("n").unwrap().to_owned();
        prop_assert_eq!(n, ops.to_string());
    }
}
