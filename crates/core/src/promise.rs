//! Promises: the handle an application holds on an outstanding QRPC.
//!
//! "Import returns a promise. Applications can wait on this promise or
//! continue computation. The callback will be invoked upon arrival of
//! the imported object" (paper §3.2, after Liskov & Shrira). In the
//! simulator, "waiting" is running the event loop; `on_ready` is the
//! callback form.

use std::cell::RefCell;
use std::rc::Rc;

use rover_script::Value;
use rover_sim::{Sim, SimTime};
use rover_wire::{OpStatus, Version};

/// Final disposition of a Rover operation.
#[derive(Clone, Debug, PartialEq)]
pub struct Outcome {
    /// Server-side (or cache-side) status.
    pub status: OpStatus,
    /// Result value: imported object summary, method result, etc.
    pub value: Value,
    /// Committed object version after the operation (0 if n/a).
    pub version: Version,
    /// True when the result reflects tentative (locally cached,
    /// not-yet-committed) state.
    pub tentative: bool,
    /// True when the result was served from the client cache without
    /// network traffic.
    pub from_cache: bool,
    /// The object involved, when the operation produced one (imports and
    /// committed exports).
    pub object: Option<crate::object::RoverObject>,
}

impl Outcome {
    /// Shorthand for a committed OK outcome.
    pub fn ok(value: Value, version: Version) -> Outcome {
        Outcome {
            status: OpStatus::Ok,
            value,
            version,
            tentative: false,
            from_cache: false,
            object: None,
        }
    }
}

type Callback = Box<dyn FnOnce(&mut Sim, &Outcome)>;

enum State {
    Pending(Vec<Callback>),
    Ready(Outcome, SimTime),
}

/// A single-assignment container resolved when a Rover operation
/// completes.
#[derive(Clone)]
pub struct Promise(Rc<RefCell<State>>);

impl Default for Promise {
    fn default() -> Self {
        Self::new()
    }
}

impl Promise {
    /// Creates an unresolved promise.
    pub fn new() -> Promise {
        Promise(Rc::new(RefCell::new(State::Pending(Vec::new()))))
    }

    /// Creates an already-resolved promise.
    pub fn resolved(sim: &Sim, outcome: Outcome) -> Promise {
        Promise(Rc::new(RefCell::new(State::Ready(outcome, sim.now()))))
    }

    /// Returns the outcome if resolved.
    pub fn poll(&self) -> Option<Outcome> {
        match &*self.0.borrow() {
            State::Ready(o, _) => Some(o.clone()),
            State::Pending(_) => None,
        }
    }

    /// Returns the virtual time at which the promise resolved.
    pub fn resolved_at(&self) -> Option<SimTime> {
        match &*self.0.borrow() {
            State::Ready(_, t) => Some(*t),
            State::Pending(_) => None,
        }
    }

    /// Returns `true` once resolved.
    pub fn is_ready(&self) -> bool {
        matches!(&*self.0.borrow(), State::Ready(..))
    }

    /// Registers a callback; fires immediately (synchronously) if the
    /// promise is already resolved.
    pub fn on_ready<F>(&self, sim: &mut Sim, f: F)
    where
        F: FnOnce(&mut Sim, &Outcome) + 'static,
    {
        let ready = {
            let st = self.0.borrow();
            match &*st {
                State::Pending(_) => None,
                State::Ready(o, _) => Some(o.clone()),
            }
        };
        match ready {
            Some(o) => f(sim, &o),
            None => {
                let mut st = self.0.borrow_mut();
                match &mut *st {
                    State::Pending(cbs) => cbs.push(Box::new(f)),
                    State::Ready(..) => unreachable!("promise resolved during registration"),
                }
            }
        }
    }

    /// Resolves the promise, firing all registered callbacks.
    ///
    /// # Panics
    ///
    /// Panics on double resolution — each QRPC completes exactly once
    /// (at-most-once execution makes violations a toolkit bug).
    pub fn resolve(&self, sim: &mut Sim, outcome: Outcome) {
        let cbs = {
            let mut st = self.0.borrow_mut();
            match std::mem::replace(&mut *st, State::Ready(outcome.clone(), sim.now())) {
                State::Pending(cbs) => cbs,
                State::Ready(..) => panic!("promise resolved twice"),
            }
        };
        for cb in cbs {
            cb(sim, &outcome);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_fires_callbacks() {
        let mut sim = Sim::new(1);
        let p = Promise::new();
        let hits = Rc::new(RefCell::new(0));
        for _ in 0..3 {
            let h = hits.clone();
            p.on_ready(&mut sim, move |_, o| {
                assert_eq!(o.status, OpStatus::Ok);
                *h.borrow_mut() += 1;
            });
        }
        assert!(!p.is_ready());
        p.resolve(&mut sim, Outcome::ok(Value::Int(1), Version(1)));
        assert_eq!(*hits.borrow(), 3);
        assert!(p.is_ready());
        assert_eq!(p.poll().unwrap().value, Value::Int(1));
    }

    #[test]
    fn late_callback_fires_immediately() {
        let mut sim = Sim::new(1);
        let p = Promise::new();
        p.resolve(&mut sim, Outcome::ok(Value::Int(2), Version(0)));
        let hit = Rc::new(RefCell::new(false));
        let h = hit.clone();
        p.on_ready(&mut sim, move |_, _| *h.borrow_mut() = true);
        assert!(*hit.borrow());
    }

    #[test]
    fn resolved_at_records_time() {
        let mut sim = Sim::new(1);
        let p = Promise::new();
        let p2 = p.clone();
        sim.schedule_after(rover_sim::SimDuration::from_millis(7), move |sim| {
            p2.resolve(sim, Outcome::ok(Value::empty(), Version(0)));
        });
        sim.run();
        assert_eq!(p.resolved_at().unwrap().as_millis(), 7);
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn double_resolve_panics() {
        let mut sim = Sim::new(1);
        let p = Promise::new();
        p.resolve(&mut sim, Outcome::ok(Value::empty(), Version(0)));
        p.resolve(&mut sim, Outcome::ok(Value::empty(), Version(0)));
    }
}
