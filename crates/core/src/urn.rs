//! Uniform Resource Names for Rover objects.
//!
//! Every Rover object has a location-independent name of the form
//! `urn:rover:<authority>/<path>` (the paper names objects with URNs per
//! RFC 1737 and maps them onto HTTP). The authority designates the home
//! server's namespace; the path is application-chosen.

use std::fmt;
use std::rc::Rc;

use crate::RoverError;

/// A validated Rover URN.
///
/// # Examples
///
/// ```
/// use rover_core::Urn;
///
/// let urn = Urn::parse("urn:rover:mail/inbox/42").unwrap();
/// assert_eq!(urn.authority(), "mail");
/// assert_eq!(urn.path(), "inbox/42");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Urn(Rc<str>);

impl Urn {
    /// Parses and validates a URN string.
    pub fn parse(s: &str) -> Result<Urn, RoverError> {
        let rest = s
            .strip_prefix("urn:rover:")
            .ok_or_else(|| RoverError::BadUrn(format!("missing urn:rover: prefix in \"{s}\"")))?;
        let (auth, path) = match rest.split_once('/') {
            Some((a, p)) => (a, p),
            None => (rest, ""),
        };
        if auth.is_empty() {
            return Err(RoverError::BadUrn(format!("empty authority in \"{s}\"")));
        }
        let ok = |c: char| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.' | '/' | '~');
        if !auth
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
        {
            return Err(RoverError::BadUrn(format!("invalid authority in \"{s}\"")));
        }
        if !path.chars().all(ok) {
            return Err(RoverError::BadUrn(format!(
                "invalid path character in \"{s}\""
            )));
        }
        Ok(Urn(Rc::from(s)))
    }

    /// Builds a URN from authority and path components.
    pub fn new(authority: &str, path: &str) -> Result<Urn, RoverError> {
        if path.is_empty() {
            Urn::parse(&format!("urn:rover:{authority}"))
        } else {
            Urn::parse(&format!("urn:rover:{authority}/{path}"))
        }
    }

    /// Returns the full URN string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Returns the authority (home-server namespace).
    pub fn authority(&self) -> &str {
        let rest = &self.0["urn:rover:".len()..];
        rest.split('/').next().expect("validated")
    }

    /// Returns the path under the authority (may be empty).
    pub fn path(&self) -> &str {
        let rest = &self.0["urn:rover:".len()..];
        rest.split_once('/').map(|(_, p)| p).unwrap_or("")
    }
}

impl fmt::Display for Urn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_splits() {
        let u = Urn::parse("urn:rover:cal/2026/07/07").unwrap();
        assert_eq!(u.authority(), "cal");
        assert_eq!(u.path(), "2026/07/07");
        assert_eq!(u.to_string(), "urn:rover:cal/2026/07/07");
    }

    #[test]
    fn authority_only() {
        let u = Urn::parse("urn:rover:web").unwrap();
        assert_eq!(u.authority(), "web");
        assert_eq!(u.path(), "");
    }

    #[test]
    fn new_builds_both_forms() {
        assert_eq!(Urn::new("m", "a/b").unwrap().as_str(), "urn:rover:m/a/b");
        assert_eq!(Urn::new("m", "").unwrap().as_str(), "urn:rover:m");
    }

    #[test]
    fn rejects_bad_names() {
        assert!(Urn::parse("http://x").is_err());
        assert!(Urn::parse("urn:rover:").is_err());
        assert!(Urn::parse("urn:rover:a b/c").is_err());
        assert!(Urn::parse("urn:rover:a/with space").is_err());
    }

    #[test]
    fn equality_and_hashing() {
        use std::collections::HashSet;
        let a = Urn::parse("urn:rover:m/x").unwrap();
        let b = Urn::parse("urn:rover:m/x").unwrap();
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }
}
