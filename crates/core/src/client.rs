//! The client access manager: Rover's application-facing API.
//!
//! "All interaction between applications and the Rover toolkit is
//! handled by the access manager": it owns the object cache, the stable
//! operation log, and the network scheduler. Applications `import`
//! objects (cache hit → immediate, miss → QRPC + promise), mutate them
//! locally and `export` the operations back to the home server
//! (tentative commit now, real commit on reply), `invoke` RDO methods
//! locally or at the server, and `prefetch` against upcoming
//! disconnection. Everything keeps working while disconnected: QRPCs
//! sit in the stable log and drain on reconnection.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use rand::Rng;
use rover_log::{FlushPolicy, MemStore, OpLog, RecordKind};
use rover_net::{HostSched, LinkId, Net, SchedRef};
use rover_script::Value;
use rover_sim::{Sim, SimTime};
use rover_wire::{
    Bytes, Decoder, Envelope, HostId, MsgKind, OpStatus, Priority, QrpcReply, QrpcRequest,
    ReplyBatch, RequestId, RoverOp, SessionId, Version, Wire,
};

use crate::cache::Cache;
use crate::config::{ClientConfig, LogPolicy};
use crate::events::ClientEvent;
use crate::object::RoverObject;
use crate::payload::{ExportPayload, InvokePayload};
use crate::promise::{Outcome, Promise};
use crate::session::{Guarantees, Session};
use crate::urn::Urn;
use crate::RoverError;

/// Shared handle to a client access manager.
pub type ClientRef = Rc<RefCell<Client>>;

/// The two promises an export produces.
///
/// The *tentative* promise resolves as soon as the update is applied to
/// the local cache copy — this is the latency the user perceives. The
/// *committed* promise resolves when the home server's decision arrives
/// (possibly much later, after reconnection).
pub struct ExportHandle {
    /// Resolves at local (tentative) apply.
    pub tentative: Promise,
    /// Resolves at home-server commit/conflict.
    pub committed: Promise,
    /// The QRPC carrying the update.
    pub req: RequestId,
}

/// Caller-supplied cost hints for [`Client::invoke_adaptive`].
#[derive(Clone, Copy, Debug, Default)]
pub struct PlacementHints {
    /// Expected result size in bytes.
    pub result_bytes: usize,
    /// Expected object size in bytes, if known (unknown objects are
    /// assumed large — 64 KiB).
    pub object_bytes: Option<usize>,
    /// Expected interpreter steps the method executes.
    pub compute_steps: u64,
    /// Future local invocations on this object are likely, so an
    /// import would amortize.
    pub reuse_likely: bool,
}

/// Keeps a [`Client::poll_object`] loop alive; dropping it stops the
/// polling.
pub struct PollGuard {
    _alive: Rc<()>,
}

/// Where [`Client::invoke_adaptive`] decided to run the method.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Placement {
    /// Ran on the already-cached copy.
    Local,
    /// Shipped the invocation to the home server.
    Remote,
    /// Imported the object and ran locally (now cached for reuse).
    ImportThenLocal,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum OpClass {
    Import,
    Export,
    Invoke,
    Ping,
}

struct Outstanding {
    request: QrpcRequest,
    log_seq: u64,
    promise: Promise,
    urn: Option<Urn>,
    /// Destination shard/server this request routes to (fixed at issue
    /// time; the basis of per-shard `acked_below` floors).
    dst: HostId,
    class: OpClass,
    issued_at: SimTime,
    enqueue_epoch: u64,
    retries: u32,
    /// Direct (non-queued) RPCs skip retransmission.
    direct: bool,
    /// An RTO probe chain is currently scheduled for this request.
    rto_armed: bool,
    /// RTO probes that found the request neither queued nor answered
    /// while connected — after two, assume random channel loss and
    /// retransmit even without a disconnection epoch.
    strikes: u8,
    /// Current (backed-off) probe interval for this request. Starts at
    /// `cfg.rto`, multiplied by `cfg.rto_backoff` after each
    /// retransmission, capped at `cfg.rto_max`.
    rto_cur: rover_sim::SimDuration,
}

type Listener = Rc<RefCell<dyn FnMut(&mut Sim, &ClientEvent)>>;

/// The Rover client: access manager, cache, log, and QRPC engine.
pub struct Client {
    cfg: ClientConfig,
    net: Net,
    sched: SchedRef,
    links: Vec<LinkId>,
    cache: Cache,
    log: OpLog<MemStore>,
    sessions: HashMap<u64, Session>,
    outstanding: BTreeMap<u64, Outstanding>,
    /// Outstanding exports per object (controls tentative lifetime).
    dirty_ops: HashMap<Urn, usize>,
    /// Outstanding import per object: concurrent imports of the same
    /// URN coalesce onto one QRPC (click-ahead users re-request pages).
    inflight_imports: HashMap<Urn, u64>,
    /// Requests logged but awaiting a group-commit flush.
    parked: Vec<u64>,
    group_timer_armed: bool,
    /// Generation stamp for the window timer: a size-cap flush retires
    /// the armed timer's batch, and the stamp keeps that stale timer
    /// from cutting the *next* batch's window short (mirrors the
    /// server-side group-commit guard).
    group_timer_gen: u64,
    unflushed: usize,
    next_req: u64,
    next_session: u64,
    /// Incremented on every link-down transition; a request enqueued in
    /// an older epoch may have been lost.
    link_epoch: u64,
    removals_since_compact: usize,
    listeners: Vec<Listener>,
    /// Single-CPU serialization horizon: local costs (marshalling, log
    /// flushes, RDO execution) queue behind each other.
    cpu_free_at: SimTime,
}

impl Client {
    /// Creates a client, wiring its scheduler and reply handler onto the
    /// network. `links` are candidate interfaces, best quality first.
    pub fn new(sim: &mut Sim, net: &Net, cfg: ClientConfig, links: Vec<LinkId>) -> ClientRef {
        Client::boot(sim, net, cfg, links, MemStore::new())
    }

    /// Restarts a client after a crash, resuming from the stable log:
    /// every logged-but-unanswered QRPC is re-issued (the home server's
    /// at-most-once cache absorbs any that actually committed before
    /// the crash). Sessions, promises, and cached objects do not
    /// survive — only the queued operations do, exactly as in the
    /// paper's design.
    pub fn recover(
        sim: &mut Sim,
        net: &Net,
        cfg: ClientConfig,
        links: Vec<LinkId>,
        store: MemStore,
    ) -> ClientRef {
        let client = Client::boot(sim, net, cfg, links, store);
        let recovered: Vec<(u64, QrpcRequest)> = {
            let c = client.borrow();
            let completed: std::collections::HashSet<u64> = c
                .log
                .records()
                .filter(|r| r.kind == RecordKind::Completion)
                .filter_map(|r| r.payload[..].try_into().ok().map(u64::from_be_bytes))
                .collect();
            c.log
                .records()
                .filter(|r| r.kind == RecordKind::Request)
                .filter_map(|r| {
                    QrpcRequest::from_shared(&r.payload)
                        .ok()
                        .map(|q| (r.seq, q))
                })
                .filter(|(_, q)| !completed.contains(&q.req_id.0))
                .collect()
        };
        {
            let mut c = client.borrow_mut();
            let epoch = c.link_epoch;
            let rto = c.cfg.rto;
            for (log_seq, request) in &recovered {
                c.next_req = c.next_req.max(request.req_id.0 + 1);
                let class = match &request.op {
                    RoverOp::Import => OpClass::Import,
                    RoverOp::Export { .. } => OpClass::Export,
                    RoverOp::Invoke { .. } => OpClass::Invoke,
                    _ => OpClass::Ping,
                };
                let urn = Urn::parse(&request.urn).ok();
                let dst = c.server_for(&request.urn);
                c.outstanding.insert(
                    request.req_id.0,
                    Outstanding {
                        request: request.clone(),
                        log_seq: *log_seq,
                        promise: Promise::new(),
                        urn,
                        dst,
                        class,
                        issued_at: sim.now(),
                        enqueue_epoch: epoch,
                        retries: 0,
                        direct: false,
                        rto_armed: false,
                        strikes: 0,
                        rto_cur: rto,
                    },
                );
            }
        }
        sim.stats
            .add("client.recovered_qrpcs", recovered.len() as u64);
        for (_, request) in recovered {
            Client::enqueue_request(&client, sim, request.req_id.0, true);
        }
        client
    }

    /// Simulates a client crash: returns the stable log's device as
    /// found on reboot (unsynced bytes gone); the client handle must be
    /// dropped by the caller.
    pub fn crash(cl: &ClientRef) -> MemStore {
        let mut c = cl.borrow_mut();
        let fresh = OpLog::open_with(MemStore::new(), FlushPolicy::Manual, false)
            .expect("fresh in-memory log");
        let old = std::mem::replace(&mut c.log, fresh);
        c.outstanding.clear();
        old.into_store().crash(None)
    }

    fn boot(
        sim: &mut Sim,
        net: &Net,
        cfg: ClientConfig,
        links: Vec<LinkId>,
        store: MemStore,
    ) -> ClientRef {
        let sched = HostSched::new(cfg.host, cfg.sched_mode);
        HostSched::set_mtu(&sched, cfg.mtu);
        for &l in &links {
            HostSched::attach_link(&sched, net, l);
        }
        let log = OpLog::open_with(store, FlushPolicy::Manual, cfg.log_compress)
            .expect("in-memory log recovery cannot fail");
        let client = Rc::new(RefCell::new(Client {
            cfg,
            net: net.clone(),
            sched,
            links: links.clone(),
            cache: Cache::new(0),
            log,
            sessions: HashMap::new(),
            outstanding: BTreeMap::new(),
            dirty_ops: HashMap::new(),
            inflight_imports: HashMap::new(),
            parked: Vec::new(),
            group_timer_armed: false,
            group_timer_gen: 0,
            unflushed: 0,
            next_req: 1,
            next_session: 1,
            link_epoch: 0,
            removals_since_compact: 0,
            listeners: Vec::new(),
            cpu_free_at: SimTime::ZERO,
        }));
        {
            let mut c = client.borrow_mut();
            c.cache = Cache::new(c.cfg.cache_capacity);
        }

        let host = client.borrow().cfg.host;
        let weak = Rc::downgrade(&client);
        net.register_host(
            host,
            rover_net::wrap_reassembly(move |sim: &mut Sim, _net: &Net, env: Envelope| {
                let Some(cl) = weak.upgrade() else { return };
                match env.kind {
                    MsgKind::Reply => Client::on_reply(&cl, sim, env),
                    MsgKind::ReplyBatch => Client::on_reply_batch(&cl, sim, env),
                    MsgKind::Callback => Client::on_callback(&cl, sim, env),
                    _ => {}
                }
            }),
        );

        for &l in &links {
            let weak = Rc::downgrade(&client);
            net.watch_link(l, move |sim, _net, _link, up| {
                if let Some(cl) = weak.upgrade() {
                    Client::on_link_change(&cl, sim, up);
                }
            });
        }
        let _ = sim;
        client
    }

    /// Returns this client's host id.
    pub fn host(cl: &ClientRef) -> HostId {
        cl.borrow().cfg.host
    }

    /// Registers a user-notification listener.
    pub fn on_event<F>(cl: &ClientRef, f: F)
    where
        F: FnMut(&mut Sim, &ClientEvent) + 'static,
    {
        cl.borrow_mut().listeners.push(Rc::new(RefCell::new(f)));
    }

    /// Creates an application session.
    pub fn create_session(
        cl: &ClientRef,
        guarantees: Guarantees,
        accept_tentative: bool,
    ) -> SessionId {
        let mut c = cl.borrow_mut();
        let id = SessionId(c.next_session);
        c.next_session += 1;
        c.sessions
            .insert(id.0, Session::new(id, guarantees, accept_tentative));
        id
    }

    /// Number of QRPCs issued but not yet answered.
    pub fn outstanding_count(cl: &ClientRef) -> usize {
        cl.borrow().outstanding.len()
    }

    /// Queued (unanswered) QRPC records in the stable operation log.
    pub fn log_len(cl: &ClientRef) -> usize {
        cl.borrow()
            .log
            .records()
            .filter(|r| r.kind == RecordKind::Request)
            .count()
    }

    /// (objects, bytes) in the cache.
    pub fn cache_usage(cl: &ClientRef) -> (usize, usize) {
        let c = cl.borrow();
        (c.cache.len(), c.cache.used_bytes())
    }

    /// Returns whether an object is currently cached.
    pub fn is_cached(cl: &ClientRef, urn: &Urn) -> bool {
        cl.borrow().cache.contains(urn)
    }

    /// Returns a clone of the cached copy a reader would see.
    pub fn cached_object(cl: &ClientRef, urn: &Urn, accept_tentative: bool) -> Option<RoverObject> {
        cl.borrow()
            .cache
            .peek(urn)
            .map(|e| e.read_copy(accept_tentative).clone())
    }

    // ------------------------------------------------------------------
    // Public operations.

    /// Imports an object into the cache.
    ///
    /// Cache hits (admissible under the session's guarantees) complete
    /// after a dispatch cost without touching the network; misses issue
    /// a QRPC and resolve when the object arrives.
    pub fn import(
        cl: &ClientRef,
        sim: &mut Sim,
        urn: &Urn,
        session: SessionId,
        prio: Priority,
    ) -> Result<Promise, RoverError> {
        // Cache path.
        let hit = {
            let mut c = cl.borrow_mut();
            let sess = c
                .sessions
                .get(&session.0)
                .ok_or(RoverError::NoSuchSession(session.0))?;
            let accept_tentative = sess.accept_tentative;
            let needs_own = sess.needs_own_writes(urn);
            let admissible_version = {
                let v = c.cache.version(urn);
                sess.read_admissible(urn, v)
            };
            let now = sim.now();
            let connected = {
                let (sched, net) = (c.sched.clone(), c.net.clone());
                HostSched::active_link(&sched, &net).is_some()
            };
            match c.cache.touch(urn, now) {
                Some(entry) => {
                    // A callback-invalidated copy is refetched while
                    // connected; a disconnected reader accepts the
                    // stale copy (better than blocking).
                    let stale = entry.invalidated_by.is_some() && connected;
                    let has_tent = entry.tentative.is_some();
                    let use_tent = has_tent && (accept_tentative || needs_own);
                    if !stale && (admissible_version || use_tent) {
                        let obj = entry.read_copy(use_tent).clone();
                        let tentative = use_tent && has_tent;
                        let version = obj.version;
                        let sess = c.sessions.get_mut(&session.0).expect("checked above");
                        sess.note_read(urn, version);
                        Some((obj, tentative))
                    } else {
                        None // Monotonic-reads miss: stale cached copy.
                    }
                }
                None => None,
            }
        };

        if let Some((obj, tentative)) = hit {
            sim.stats.incr("client.cache_hits");
            let cost = {
                let mut c = cl.borrow_mut();
                let d = c.cfg.cpu.dispatch_cost();
                c.charge_serial(sim.now(), d)
            };
            let promise = Promise::new();
            let p2 = promise.clone();
            let cl2 = cl.clone();
            let urn2 = urn.clone();
            sim.schedule_after(cost, move |sim| {
                let version = obj.version;
                p2.resolve(
                    sim,
                    Outcome {
                        status: OpStatus::Ok,
                        value: Value::str(urn2.as_str()),
                        version,
                        tentative,
                        from_cache: true,
                        object: Some(obj),
                    },
                );
                Client::emit(
                    &cl2,
                    sim,
                    ClientEvent::ImportDone {
                        urn: urn2,
                        from_cache: true,
                        tentative,
                        status: OpStatus::Ok,
                    },
                );
            });
            return Ok(promise);
        }

        sim.stats.incr("client.cache_misses");
        // Coalesce with an identical in-flight import — but never onto a
        // *lower*-priority one: a foreground click must not inherit a
        // background prefetch's queueing position, so it re-issues and
        // whichever reply lands first fills the cache.
        if let Some(req) = cl.borrow().inflight_imports.get(urn).copied() {
            if let Some(o) = cl.borrow().outstanding.get(&req) {
                if o.request.priority <= prio {
                    sim.stats.incr("client.imports_coalesced");
                    return Ok(o.promise.clone());
                }
                sim.stats.incr("client.imports_escalated");
            }
        }
        let request = {
            let mut c = cl.borrow_mut();
            c.build_request(
                RoverOp::Import,
                urn.as_str(),
                session,
                prio,
                Bytes::new(),
                0,
            )
        };
        cl.borrow_mut()
            .inflight_imports
            .insert(urn.clone(), request.req_id.0);
        Ok(Client::issue_qrpc(
            cl,
            sim,
            request,
            Some(urn.clone()),
            OpClass::Import,
            rover_sim::SimDuration::ZERO,
        ))
    }

    /// Exports a mutating RDO method invocation: applies it to the local
    /// tentative copy now and queues a QRPC to the home server.
    pub fn export(
        cl: &ClientRef,
        sim: &mut Sim,
        urn: &Urn,
        session: SessionId,
        method: &str,
        args: &[&str],
        prio: Priority,
    ) -> Result<ExportHandle, RoverError> {
        let (request, local_cost) = {
            let mut c = cl.borrow_mut();
            if !c.sessions.contains_key(&session.0) {
                return Err(RoverError::NoSuchSession(session.0));
            }
            let entry = c
                .cache
                .peek(urn)
                .ok_or_else(|| RoverError::NotCached(urn.to_string()))?;

            // Apply locally on (a copy of) the freshest local state.
            let mut tentative = entry.read_copy(true).clone();
            let vals: Vec<Value> = args.iter().map(Value::str).collect();
            let budget = c.cfg.budget;
            let run = tentative.run_method(method, &vals, budget).map_err(|e| {
                if matches!(e, RoverError::ScriptParse(_)) {
                    sim.stats.incr("script.parse_rejected");
                }
                e
            })?;
            let raw_cost = c.cfg.cpu.dispatch_cost() + c.cfg.cpu.interp_cost(run.steps);
            let local_cost = c.charge_serial(sim.now(), raw_cost);
            c.cache.set_tentative(urn, tentative);
            *c.dirty_ops.entry(urn.clone()).or_insert(0) += 1;

            let base_version = c.cache.version(urn);
            let dst = c.server_for(urn.as_str());
            let sess = c.sessions.get_mut(&session.0).expect("checked");
            let ordered = sess.guarantees.ordered_writes();
            let seq = sess.note_write_issued(urn, dst);
            let payload = ExportPayload {
                method: method.to_owned(),
                args: args.iter().map(|s| s.to_string()).collect(),
                session_seq: if ordered { seq } else { 0 },
            };
            let request = c.build_request(
                RoverOp::Export {
                    method: method.to_owned(),
                },
                urn.as_str(),
                session,
                prio,
                payload.to_bytes(),
                base_version.0,
            );
            (request, local_cost)
        };

        let req_id = request.req_id;
        sim.stats.incr("client.exports");

        // Tentative promise: resolves after the local apply cost.
        let tentative = Promise::new();
        let t2 = tentative.clone();
        let cl2 = cl.clone();
        let urn2 = urn.clone();
        sim.schedule_after(local_cost, move |sim| {
            t2.resolve(
                sim,
                Outcome {
                    status: OpStatus::Ok,
                    value: Value::empty(),
                    version: Version(0),
                    tentative: true,
                    from_cache: true,
                    object: None,
                },
            );
            Client::emit(
                &cl2,
                sim,
                ClientEvent::TentativeApplied {
                    urn: urn2,
                    req: req_id,
                },
            );
        });

        // No extra delay: the CPU horizon already serializes the QRPC's
        // marshalling behind the local apply.
        let committed = Client::issue_qrpc(
            cl,
            sim,
            request,
            Some(urn.clone()),
            OpClass::Export,
            rover_sim::SimDuration::ZERO,
        );
        Ok(ExportHandle {
            tentative,
            committed,
            req: req_id,
        })
    }

    /// Loads an object and runs a method on arrival: import combined
    /// with a local invocation ("the current implementation also has a
    /// load operation that is an import combined with a call to create
    /// a process", paper §3.2). The returned promise resolves with the
    /// method's result; cache hits run immediately.
    pub fn load(
        cl: &ClientRef,
        sim: &mut Sim,
        urn: &Urn,
        session: SessionId,
        method: &str,
        args: &[&str],
        prio: Priority,
    ) -> Result<Promise, RoverError> {
        let import = Client::import(cl, sim, urn, session, prio)?;
        let promise = Promise::new();
        let out = promise.clone();
        let cl2 = cl.clone();
        let urn2 = urn.clone();
        let method = method.to_owned();
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        import.on_ready(sim, move |sim, outcome| {
            if outcome.status != OpStatus::Ok {
                out.resolve(sim, outcome.clone());
                return;
            }
            let arg_refs: Vec<&str> = args.iter().map(String::as_str).collect();
            match Client::invoke_local(&cl2, sim, &urn2, &method, &arg_refs) {
                Ok(inner) => {
                    let out2 = out.clone();
                    inner.on_ready(sim, move |sim, o| out2.resolve(sim, o.clone()));
                }
                Err(e) => {
                    let mut failed = outcome.clone();
                    failed.status = OpStatus::ExecError;
                    failed.value = Value::from(e.to_string());
                    out.resolve(sim, failed);
                }
            }
        });
        Ok(promise)
    }

    /// Chooses where to run a method — the paper's adaptation:
    /// "depending on the power of the mobile host and the available
    /// bandwidth, Rover dynamically adapts and moves functionality
    /// between the client and the server."
    ///
    /// Cached objects run locally for free. Otherwise the estimated
    /// completion times of *ship-the-function* (remote invoke: small
    /// request, result-sized reply) and *ship-the-data* (import the
    /// object, run locally, keep it cached) are compared over the
    /// currently active link, using the caller's [`PlacementHints`].
    /// Returns the promise plus the placement that was chosen.
    #[allow(clippy::too_many_arguments)]
    pub fn invoke_adaptive(
        cl: &ClientRef,
        sim: &mut Sim,
        urn: &Urn,
        session: SessionId,
        method: &str,
        args: &[&str],
        hints: PlacementHints,
        prio: Priority,
    ) -> Result<(Promise, Placement), RoverError> {
        if Client::is_cached(cl, urn) {
            let p = Client::invoke_local(cl, sim, urn, method, args)?;
            return Ok((p, Placement::Local));
        }

        // Estimate over the active link (fall back to the first
        // attached interface's parameters while disconnected — the
        // decision still holds when the queue drains over it).
        let spec = {
            let c = cl.borrow();
            let active =
                HostSched::active_link(&c.sched, &c.net).or_else(|| c.links.first().copied());
            match active {
                Some(l) => c.net.spec(l),
                None => {
                    drop(c);
                    // No interfaces at all: ship the function; it is
                    // never worse than also shipping the object.
                    let p = Client::invoke_remote(cl, sim, urn, session, method, args, prio)?;
                    return Ok((p, Placement::Remote));
                }
            }
        };

        let client_cpu = cl.borrow().cfg.cpu;
        // The client assumes a workstation-class home server, as the
        // paper's testbed had.
        let server_cpu = rover_sim::CpuModel::SERVER_WORKSTATION;
        let rtt = spec.latency.as_secs_f64() * 2.0;
        let req_bytes = 160 + hints.result_bytes / 64; // envelope + args
        let remote_s = rtt
            + spec.tx_time(req_bytes + hints.result_bytes).as_secs_f64()
            + server_cpu.interp_cost(hints.compute_steps).as_secs_f64();
        let object_bytes = hints.object_bytes.unwrap_or(64 << 10);
        let mut import_s = rtt
            + spec.tx_time(req_bytes + object_bytes).as_secs_f64()
            + client_cpu.interp_cost(hints.compute_steps).as_secs_f64();
        if hints.reuse_likely {
            // The import amortizes over future local invocations.
            import_s /= 2.0;
        }

        if remote_s <= import_s {
            sim.stats.incr("client.placement_remote");
            let p = Client::invoke_remote(cl, sim, urn, session, method, args, prio)?;
            Ok((p, Placement::Remote))
        } else {
            sim.stats.incr("client.placement_import");
            let p = Client::load(cl, sim, urn, session, method, args, prio)?;
            Ok((p, Placement::ImportThenLocal))
        }
    }

    /// Invokes a method on the cached copy, locally, read-only.
    ///
    /// This is the "cached RDO" fast path of experiment E4: no network,
    /// no log — just budgeted interpretation. Mutating methods are
    /// rejected; updates must go through [`Client::export`].
    pub fn invoke_local(
        cl: &ClientRef,
        sim: &mut Sim,
        urn: &Urn,
        method: &str,
        args: &[&str],
    ) -> Result<Promise, RoverError> {
        let (result, cost) = {
            let mut c = cl.borrow_mut();
            let entry = c
                .cache
                .peek(urn)
                .ok_or_else(|| RoverError::NotCached(urn.to_string()))?;
            let mut scratch = entry.read_copy(true).clone();
            let vals: Vec<Value> = args.iter().map(Value::str).collect();
            let run = scratch
                .run_method(method, &vals, c.cfg.budget)
                .map_err(|e| {
                    if matches!(e, RoverError::ScriptParse(_)) {
                        sim.stats.incr("script.parse_rejected");
                    }
                    e
                })?;
            if run.mutated {
                return Err(RoverError::LocalMutation(urn.to_string()));
            }
            let raw = c.cfg.cpu.dispatch_cost() + c.cfg.cpu.interp_cost(run.steps);
            let cost = c.charge_serial(sim.now(), raw);
            (run.result, cost)
        };
        sim.stats.incr("client.local_invokes");
        sim.stats.sample_duration("client.local_invoke_ms", cost);
        let promise = Promise::new();
        let p2 = promise.clone();
        sim.schedule_after(cost, move |sim| {
            p2.resolve(
                sim,
                Outcome {
                    status: OpStatus::Ok,
                    value: result,
                    version: Version(0),
                    tentative: false,
                    from_cache: true,
                    object: None,
                },
            );
        });
        Ok(promise)
    }

    /// Invokes a method at the home server (function shipping) via QRPC.
    pub fn invoke_remote(
        cl: &ClientRef,
        sim: &mut Sim,
        urn: &Urn,
        session: SessionId,
        method: &str,
        args: &[&str],
        prio: Priority,
    ) -> Result<Promise, RoverError> {
        let request = {
            let mut c = cl.borrow_mut();
            if !c.sessions.contains_key(&session.0) {
                return Err(RoverError::NoSuchSession(session.0));
            }
            let payload = InvokePayload {
                method: method.to_owned(),
                args: args.iter().map(|s| s.to_string()).collect(),
            };
            c.build_request(
                RoverOp::Invoke {
                    method: method.to_owned(),
                },
                urn.as_str(),
                session,
                prio,
                payload.to_bytes(),
                0,
            )
        };
        Ok(Client::issue_qrpc(
            cl,
            sim,
            request,
            Some(urn.clone()),
            OpClass::Invoke,
            rover_sim::SimDuration::ZERO,
        ))
    }

    /// Issues a null QRPC (experiment E1's probe).
    pub fn ping(cl: &ClientRef, sim: &mut Sim, session: SessionId, prio: Priority) -> Promise {
        let request = {
            let mut c = cl.borrow_mut();
            c.build_request(
                RoverOp::Ping,
                "urn:rover:sys/ping",
                session,
                prio,
                Bytes::new(),
                0,
            )
        };
        Client::issue_qrpc(
            cl,
            sim,
            request,
            None,
            OpClass::Ping,
            rover_sim::SimDuration::ZERO,
        )
    }

    /// Issues a *plain* (non-queued) null RPC: no stable log, no
    /// scheduler queue — the conventional-RPC baseline E1 compares
    /// against. Fails immediately when disconnected, which is the point.
    pub fn ping_direct(
        cl: &ClientRef,
        sim: &mut Sim,
        session: SessionId,
    ) -> Result<Promise, RoverError> {
        let (request, marshal, link, net, server) = {
            let mut c = cl.borrow_mut();
            let request = c.build_request(
                RoverOp::Ping,
                "urn:rover:sys/ping",
                session,
                Priority::FOREGROUND,
                Bytes::new(),
                0,
            );
            let bytes = request.to_bytes();
            let m = c.cfg.cpu.marshal_cost(bytes.len());
            let marshal = c.charge_serial(sim.now(), m);
            let link = HostSched::active_link(&c.sched, &c.net);
            let dst = c.server_for("urn:rover:sys/ping");
            (request, marshal, link, c.net.clone(), dst)
        };
        let link = link.ok_or_else(|| RoverError::Wire("disconnected".into()))?;

        let promise = Promise::new();
        {
            let mut c = cl.borrow_mut();
            let epoch = c.link_epoch;
            let rto = c.cfg.rto;
            c.outstanding.insert(
                request.req_id.0,
                Outstanding {
                    request: request.clone(),
                    log_seq: 0,
                    promise: promise.clone(),
                    urn: None,
                    dst: server,
                    class: OpClass::Ping,
                    issued_at: sim.now(),
                    enqueue_epoch: epoch,
                    retries: 0,
                    direct: true,
                    rto_armed: false,
                    strikes: 0,
                    rto_cur: rto,
                },
            );
        }
        let host = Client::host(cl);
        let env = Envelope::request(host, server, &request);
        let net2 = net.clone();
        sim.schedule_after(marshal, move |sim| {
            // Direct send: a failure is surfaced by never resolving.
            let _ = net2.send(sim, link, env);
        });
        Ok(promise)
    }

    /// Prefetches objects at background priority ("filling the cache
    /// with useful information" before disconnection, paper §4).
    pub fn prefetch(cl: &ClientRef, sim: &mut Sim, urns: &[Urn], session: SessionId) {
        for urn in urns {
            if !Client::is_cached(cl, urn) {
                let _ = Client::import(cl, sim, urn, session, Priority::BACKGROUND);
                sim.stats.incr("client.prefetches");
            }
        }
    }

    /// Periodically refreshes a cached object — the paper's *polling*
    /// alternative to server callbacks for shrinking the stale-read
    /// window. Polls only run while connected (a disconnected refresh
    /// would just queue) and stop when the returned guard is dropped.
    pub fn poll_object(
        cl: &ClientRef,
        sim: &mut Sim,
        urn: &Urn,
        session: SessionId,
        every: rover_sim::SimDuration,
    ) -> PollGuard {
        let alive = Rc::new(());
        let weak_guard = Rc::downgrade(&alive);
        let weak_client = Rc::downgrade(cl);
        let urn = urn.clone();
        fn tick(
            weak_client: std::rc::Weak<RefCell<Client>>,
            weak_guard: std::rc::Weak<()>,
            sim: &mut Sim,
            urn: Urn,
            session: SessionId,
            every: rover_sim::SimDuration,
        ) {
            sim.schedule_after(every, move |sim| {
                if weak_guard.upgrade().is_none() {
                    return; // Guard dropped: stop polling.
                }
                let Some(cl) = weak_client.upgrade() else {
                    return;
                };
                let connected = {
                    let c = cl.borrow();
                    let (sched, net) = (c.sched.clone(), c.net.clone());
                    HostSched::active_link(&sched, &net).is_some()
                };
                if connected {
                    // Force a refresh: a poll bypasses the cache hit
                    // path by invalidating first.
                    let v = cl.borrow().cache.version(&urn);
                    if v > Version(0) {
                        cl.borrow_mut().cache.invalidate(&urn, Version(v.0 + 1));
                    }
                    let _ = Client::import(&cl, sim, &urn, session, Priority::BACKGROUND);
                    sim.stats.incr("client.polls");
                }
                tick(weak_client, weak_guard, sim, urn, session, every);
            });
        }
        tick(weak_client, weak_guard, sim, urn.clone(), session, every);
        PollGuard { _alive: alive }
    }

    /// Pins (or unpins) a cached object against eviction — hoarded
    /// objects must survive cache pressure or the user's offline plan
    /// breaks. Returns whether the object was cached.
    pub fn set_hoarded(cl: &ClientRef, urn: &Urn, on: bool) -> bool {
        cl.borrow_mut().cache.set_hoarded(urn, on)
    }

    /// Prefetches a named *collection*: imports the collection object
    /// (whose `members` field lists URNs) and then prefetches every
    /// member. This is the paper's user-interface metaphor for
    /// "indicating collections of objects to be prefetched" — one click
    /// hoards a folder, a calendar week, a site.
    ///
    /// The returned promise resolves when the collection *index*
    /// arrives; members fill in behind it at background priority.
    pub fn prefetch_collection(
        cl: &ClientRef,
        sim: &mut Sim,
        urn: &Urn,
        session: SessionId,
    ) -> Result<Promise, RoverError> {
        let p = Client::import(cl, sim, urn, session, Priority::BACKGROUND)?;
        let cl2 = cl.clone();
        p.on_ready(sim, move |sim, outcome| {
            if let Some(obj) = &outcome.object {
                if let Some(members) = obj.field("members") {
                    let urns: Vec<Urn> = rover_script::parse_list(members)
                        .unwrap_or_default()
                        .iter()
                        .filter_map(|v| Urn::parse(&v.as_str()).ok())
                        .collect();
                    Client::prefetch(&cl2, sim, &urns, session);
                }
            }
        });
        Ok(p)
    }

    // ------------------------------------------------------------------
    // QRPC engine.

    /// Returns the home server for an object: the shard map (when
    /// configured) wins, then per-authority homes, then the default.
    fn server_for(&self, urn: &str) -> HostId {
        if let Some(map) = &self.cfg.shards {
            return map.host_for(urn);
        }
        Urn::parse(urn)
            .ok()
            .and_then(|u| self.cfg.authorities.get(u.authority()).copied())
            .unwrap_or(self.cfg.server)
    }

    /// Routes one outbound request, possibly amending it. Writes (and
    /// everything that is not an import) go to the object's home shard.
    /// An import may be offloaded to the least-loaded replica holder
    /// the dynamic directory lists for its URN — but only when the
    /// session has no pending writes on the object (read-your-writes
    /// routes home) — and then carries the session's read floor in the
    /// request's read-vector so the holder can refuse a stale serve
    /// (monotonic reads never weaken). Without a dynamic routing plane
    /// this is exactly [`Client::server_for`] and the request is
    /// untouched.
    fn route_request(&mut self, request: &mut QrpcRequest) -> HostId {
        let home = self.server_for(&request.urn);
        if !matches!(request.op, RoverOp::Import) {
            return home;
        }
        let Some(map) = self.cfg.shards.clone() else {
            return home;
        };
        if map.len() <= 1 || !map.has_dynamic() {
            return home;
        }
        let (floor, pending) = match (
            self.sessions.get(&request.session.0),
            Urn::parse(&request.urn).ok(),
        ) {
            (Some(sess), Some(u)) => (sess.read_floor(&u).0, sess.needs_own_writes(&u)),
            _ => (0, false),
        };
        if pending {
            return home;
        }
        let dst = map.read_host_for(&request.urn, floor);
        if dst != home {
            request.read_vector = vec![(request.urn.clone(), floor)];
        }
        dst
    }

    /// Serializes a local CPU/storage cost behind earlier local work;
    /// returns the delay from `now` until this work completes.
    fn charge_serial(
        &mut self,
        now: SimTime,
        cost: rover_sim::SimDuration,
    ) -> rover_sim::SimDuration {
        let start = self.cpu_free_at.max(now);
        let done = start + cost;
        self.cpu_free_at = done;
        done.since(now)
    }

    /// Lowest request id not yet answered: every id strictly below it
    /// had its reply fully processed here, so the server may safely
    /// forget their dedup entries (piggybacked as
    /// `QrpcRequest::acked_below`).
    fn ack_floor(&self) -> u64 {
        self.outstanding
            .keys()
            .next()
            .copied()
            .unwrap_or(self.next_req)
    }

    /// Per-shard acknowledgement floor: the lowest unanswered request id
    /// *routed to `dst`*. Request ids stay globally unique per client
    /// (replies carry only the id), so each shard sees a sparse subset
    /// of the id space; its floor may only account for requests it will
    /// ever see, otherwise a slow shard would hold back dedup eviction
    /// on a fast one — or worse, a fast shard's floor would overrun ids
    /// still outstanding at a slow one. Unsharded clients keep the
    /// global floor so their wire bytes are unchanged.
    fn ack_floor_for(&self, dst: HostId) -> u64 {
        if self.cfg.shards.is_none() {
            return self.ack_floor();
        }
        self.outstanding
            .iter()
            .find(|(_, o)| o.dst == dst)
            .map(|(id, _)| *id)
            .unwrap_or(self.next_req)
    }

    fn build_request(
        &mut self,
        op: RoverOp,
        urn: &str,
        session: SessionId,
        priority: Priority,
        payload: Bytes,
        base_version: u64,
    ) -> QrpcRequest {
        let req_id = RequestId(self.next_req);
        self.next_req += 1;
        let dst = self.server_for(urn);
        let acked_below = self.ack_floor_for(dst).min(req_id.0);
        // Cross-shard writes-follow-reads: a write leaving for one shard
        // carries the session's read floors for objects homed *on that
        // shard*, so the shard can refuse to admit the write into a
        // state older than anything this session already observed
        // (relevant after a shard crash-restart). Single-shard traffic
        // carries nothing — its wire bytes are unchanged.
        let read_vector = match (&op, &self.cfg.shards) {
            (RoverOp::Export { .. }, Some(map)) if map.len() > 1 => {
                match self.sessions.get(&session.0) {
                    Some(sess) => {
                        let mut rv: Vec<(String, u64)> = sess
                            .reads()
                            .filter(|(u, _)| self.server_for(u.as_str()) == dst)
                            .map(|(u, v)| (u.as_str().to_owned(), v.0))
                            .collect();
                        rv.sort();
                        rv.truncate(16);
                        rv
                    }
                    None => Vec::new(),
                }
            }
            _ => Vec::new(),
        };
        QrpcRequest {
            req_id,
            client: self.cfg.host,
            session,
            op,
            urn: urn.to_owned(),
            base_version: Version(base_version),
            priority,
            auth: self.cfg.auth_token,
            acked_below,
            payload,
            read_vector,
        }
    }

    /// Logs, schedules and tracks one QRPC; returns its completion
    /// promise. `extra_delay` precedes marshalling (local RDO apply
    /// time for exports).
    fn issue_qrpc(
        cl: &ClientRef,
        sim: &mut Sim,
        mut request: QrpcRequest,
        urn: Option<Urn>,
        class: OpClass,
        extra_delay: rover_sim::SimDuration,
    ) -> Promise {
        let promise = Promise::new();
        let req_id = request.req_id;
        let (ready, delay) = {
            let mut c = cl.borrow_mut();
            // Route before marshalling: replica-offloaded imports gain
            // their read-floor trailer here, so the logged bytes match
            // the wire bytes.
            let routed = c.route_request(&mut request);
            let bytes = request.to_bytes();
            let marshal = c.cfg.cpu.marshal_cost(bytes.len());
            sim.stats.sample_duration("client.marshal_ms", marshal);

            // Stable-log handling per policy.
            let (log_seq, flush_cost, ready) = match c.cfg.log_policy {
                LogPolicy::None => (0, rover_sim::SimDuration::ZERO, vec![req_id.0]),
                LogPolicy::PerOperation => {
                    let seq = c
                        .log
                        .append(RecordKind::Request, bytes.clone())
                        .expect("in-memory log append");
                    let receipt = c.log.flush().expect("in-memory log flush");
                    let cost = c.cfg.storage.flush_cost(receipt);
                    sim.stats.sample_duration("client.flush_ms", cost);
                    (seq, cost, vec![req_id.0])
                }
                LogPolicy::GroupCommit { n, timeout } => {
                    let seq = c
                        .log
                        .append(RecordKind::Request, bytes.clone())
                        .expect("in-memory log append");
                    c.unflushed += 1;
                    c.parked.push(req_id.0);
                    if c.unflushed >= n {
                        let receipt = c.log.flush().expect("flush");
                        let cost = c.cfg.storage.flush_cost(receipt);
                        sim.stats.sample_duration("client.flush_ms", cost);
                        c.unflushed = 0;
                        // The size cap beat the window timer to this
                        // batch: retire the timer (generation bump) so
                        // its eventual firing cannot cut the next
                        // batch's window short.
                        c.group_timer_armed = false;
                        c.group_timer_gen += 1;
                        let ready = std::mem::take(&mut c.parked);
                        (seq, cost, ready)
                    } else {
                        if !c.group_timer_armed {
                            c.group_timer_armed = true;
                            c.group_timer_gen += 1;
                            let gen = c.group_timer_gen;
                            let cl2 = cl.clone();
                            sim.schedule_after(timeout, move |sim| {
                                let live = {
                                    let c = cl2.borrow();
                                    c.group_timer_armed && c.group_timer_gen == gen
                                };
                                if live {
                                    Client::group_flush(&cl2, sim);
                                }
                            });
                        }
                        (seq, rover_sim::SimDuration::ZERO, Vec::new())
                    }
                }
            };

            let epoch = c.link_epoch;
            let rto = c.cfg.rto;
            let dst = routed;
            c.outstanding.insert(
                req_id.0,
                Outstanding {
                    request,
                    log_seq,
                    promise: promise.clone(),
                    urn: urn.clone(),
                    dst,
                    class,
                    issued_at: sim.now(),
                    enqueue_epoch: epoch,
                    retries: 0,
                    direct: false,
                    rto_armed: false,
                    strikes: 0,
                    rto_cur: rto,
                },
            );
            if let Some(u) = &urn {
                c.cache.pin(u, 1);
            }
            let delay = c.charge_serial(sim.now(), extra_delay + marshal + flush_cost);
            (ready, delay)
        };
        sim.stats.incr("client.qrpc_issued");
        sim.trace("qrpc", format!("issue req={} class={class:?}", req_id.0));

        if !ready.is_empty() {
            let cl2 = cl.clone();
            sim.schedule_after(delay, move |sim| {
                for id in ready {
                    Client::enqueue_request(&cl2, sim, id, true);
                }
            });
        }
        promise
    }

    /// Group-commit timeout: flush and release parked requests.
    fn group_flush(cl: &ClientRef, sim: &mut Sim) {
        let (ready, cost) = {
            let mut c = cl.borrow_mut();
            c.group_timer_armed = false;
            if c.parked.is_empty() {
                return;
            }
            let receipt = c.log.flush().expect("flush");
            let cost = c.cfg.storage.flush_cost(receipt);
            sim.stats.sample_duration("client.flush_ms", cost);
            c.unflushed = 0;
            (std::mem::take(&mut c.parked), cost)
        };
        let cl2 = cl.clone();
        sim.schedule_after(cost, move |sim| {
            for id in ready {
                Client::enqueue_request(&cl2, sim, id, true);
            }
        });
    }

    /// Hands a tracked request to the network scheduler.
    fn enqueue_request(cl: &ClientRef, sim: &mut Sim, req: u64, first: bool) {
        let item = {
            let mut c = cl.borrow_mut();
            let epoch = c.link_epoch;
            let host = c.cfg.host;
            let (sched, net) = (c.sched.clone(), c.net.clone());
            // Every copy of a request goes to the destination recorded
            // at issue time: re-computing the route per transmit would
            // let a retransmission chase a migration to a shard that
            // never saw the original — and re-execute a commit whose
            // reply was merely lost. Route changes happen only through
            // the explicit redirect path (fresh request id).
            let dst = c.outstanding.get(&req).map(|o| o.dst);
            let floor = dst.map_or(req, |d| c.ack_floor_for(d).min(req));
            match (c.outstanding.get_mut(&req), dst) {
                (Some(o), Some(dst)) => {
                    o.enqueue_epoch = epoch;
                    if !first {
                        o.retries += 1;
                    }
                    // Piggyback the freshest acknowledgement floor on
                    // every copy of the request that hits the wire, so
                    // the server's dedup eviction keeps pace.
                    o.request.acked_below = floor;
                    let env = Envelope::request(host, dst, &o.request);
                    Some((env, o.request.priority, sched, net))
                }
                _ => None,
            }
        };
        if let Some((env, prio, sched, net)) = item {
            HostSched::enqueue_keyed(&sched, sim, &net, env, prio, Some(req));
            if first {
                Client::arm_rto(cl, sim, req);
            } else {
                sim.stats.incr("client.retransmits");
                sim.trace("qrpc", format!("retransmit req={req}"));
                Client::emit(
                    cl,
                    sim,
                    ClientEvent::Retransmit {
                        req: RequestId(req),
                    },
                );
            }
        }
    }

    /// Periodic retransmission probe for one request.
    ///
    /// The probe chain only lives while a link is up: while the client
    /// is disconnected nothing can be retransmitted anyway, so the
    /// chain parks itself and [`Client::on_link_change`] restarts it on
    /// reconnection. (This also lets `Sim::run` drain while requests
    /// wait out a disconnection.)
    fn arm_rto(cl: &ClientRef, sim: &mut Sim, req: u64) {
        let interval = {
            let mut c = cl.borrow_mut();
            let cur = match c.outstanding.get_mut(&req) {
                Some(o) if !o.rto_armed && !o.direct => {
                    o.rto_armed = true;
                    o.rto_cur
                }
                _ => return,
            };
            let jitter = c.cfg.rto_jitter;
            drop(c);
            if jitter > 0.0 {
                // Jitter decorrelates probe storms when many requests
                // were issued together. The draw is skipped entirely at
                // jitter 0.0 so default runs stay byte-deterministic.
                let u: f64 = sim.rng().gen();
                rover_sim::SimDuration::from_micros(
                    (cur.as_micros() as f64 * (1.0 + jitter * u)) as u64,
                )
            } else {
                cur
            }
        };
        let cl2 = cl.clone();
        sim.schedule_after(interval, move |sim| {
            enum Probe {
                Park,
                Rearm,
                Retransmit,
                GiveUp,
            }
            let action = {
                let mut c = cl2.borrow_mut();
                let connected = {
                    let (sched, net) = (c.sched.clone(), c.net.clone());
                    HostSched::active_link(&sched, &net).is_some()
                };
                let queued = {
                    let sched = c.sched.clone();
                    HostSched::has_key(&sched, req)
                };
                let epoch = c.link_epoch;
                let backoff = c.cfg.rto_backoff;
                let rto_max = c.cfg.rto_max;
                let budget = c.cfg.retry_budget;
                match c.outstanding.get_mut(&req) {
                    None => Probe::Park, // Completed; stop probing.
                    Some(o) => {
                        o.rto_armed = false;
                        if !connected {
                            Probe::Park // Restarted on reconnection.
                        } else if queued {
                            o.strikes = 0;
                            Probe::Rearm
                        } else {
                            let suspected = if o.enqueue_epoch < epoch {
                                true
                            } else {
                                // Connected, transmitted, unanswered:
                                // after two probes assume random loss.
                                o.strikes += 1;
                                if o.strikes >= 2 {
                                    o.strikes = 0;
                                    true
                                } else {
                                    false
                                }
                            };
                            if !suspected {
                                Probe::Rearm
                            } else if budget.is_some_and(|b| o.retries >= b) {
                                Probe::GiveUp
                            } else {
                                // Exponential backoff: each
                                // retransmission widens the probe
                                // interval up to the cap.
                                let grown = rover_sim::SimDuration::from_micros(
                                    (o.rto_cur.as_micros() as f64 * backoff) as u64,
                                );
                                o.rto_cur = grown.min(rto_max);
                                Probe::Retransmit
                            }
                        }
                    }
                }
            };
            match action {
                Probe::Park => {}
                Probe::Rearm => Client::arm_rto(&cl2, sim, req),
                Probe::Retransmit => {
                    Client::enqueue_request(&cl2, sim, req, false);
                    Client::arm_rto(&cl2, sim, req);
                }
                Probe::GiveUp => Client::give_up(&cl2, sim, req),
            }
        });
    }

    /// Retry budget exhausted: abandon a queued QRPC gracefully. The
    /// request is retired from the stable log (so a crash-recovery does
    /// not resurrect it), cache pins and tentative bookkeeping are
    /// unwound exactly as on completion, and the promise resolves with
    /// a locally synthesized [`OpStatus::Unreachable`] outcome.
    fn give_up(cl: &ClientRef, sim: &mut Sim, req: u64) {
        let mut events: Vec<ClientEvent> = Vec::new();
        let done = {
            let mut c = cl.borrow_mut();
            let Some(o) = c.outstanding.remove(&req) else {
                return; // Raced with a late reply.
            };
            c.retire_log_record(req, o.log_seq);
            if let Some(u) = &o.urn {
                c.cache.pin(u, -1);
                if o.class == OpClass::Import && c.inflight_imports.get(u) == Some(&req) {
                    c.inflight_imports.remove(u);
                }
            }
            if o.class == OpClass::Export {
                let urn = o.urn.clone().expect("exports carry a urn");
                if let Some(sess) = c.sessions.get_mut(&o.request.session.0) {
                    sess.note_write_done(&urn, Version(0));
                }
                if let Some(n) = c.dirty_ops.get_mut(&urn) {
                    *n -= 1;
                    if *n == 0 {
                        c.dirty_ops.remove(&urn);
                        c.cache.clear_tentative(&urn);
                    }
                }
            }
            events.push(ClientEvent::Unreachable {
                req: RequestId(req),
                urn: o.urn.clone(),
            });
            let outcome = Outcome {
                status: OpStatus::Unreachable,
                value: Value::empty(),
                version: Version(0),
                tentative: false,
                from_cache: false,
                object: None,
            };
            sim.stats.incr("client.retry_exhausted");
            sim.trace("qrpc", format!("give up req={req}: retry budget exhausted"));
            (o.promise, outcome)
        };
        for ev in events {
            Client::emit(cl, sim, ev);
        }
        let (promise, outcome) = done;
        promise.resolve(sim, outcome);
    }

    /// Drops a decided (or abandoned) request's record from the stable
    /// log, leaving a completion marker so a post-crash recovery does
    /// not re-issue it; compacts periodically.
    fn retire_log_record(&mut self, req: u64, log_seq: u64) {
        if log_seq == 0 {
            return;
        }
        let _ = self.log.remove(log_seq);
        // Completion marker: keeps a post-crash recovery from
        // re-issuing this request while its bytes still sit on the
        // device. Not flushed — it rides with later traffic.
        let _ = self
            .log
            .append(RecordKind::Completion, req.to_be_bytes().to_vec());
        self.removals_since_compact += 1;
        if self.removals_since_compact >= 64 {
            // Compaction drops dead request bytes, which also obsoletes
            // every completion marker.
            let stale: Vec<u64> = self
                .log
                .records()
                .filter(|r| r.kind == RecordKind::Completion)
                .map(|r| r.seq)
                .collect();
            for seq in stale {
                let _ = self.log.remove(seq);
            }
            let _ = self.log.compact();
            self.removals_since_compact = 0;
        }
    }

    /// Connectivity transition: bump the loss epoch on down; re-enqueue
    /// potentially lost requests on up.
    fn on_link_change(cl: &ClientRef, sim: &mut Sim, up: bool) {
        let to_resend: Vec<u64> = {
            let mut c = cl.borrow_mut();
            if !up {
                c.link_epoch += 1;
                Vec::new()
            } else {
                let epoch = c.link_epoch;
                let sched = c.sched.clone();
                c.outstanding
                    .iter()
                    .filter(|(id, o)| {
                        !o.direct && o.enqueue_epoch < epoch && !HostSched::has_key(&sched, **id)
                    })
                    .map(|(id, _)| *id)
                    .collect()
            }
        };
        for id in to_resend {
            Client::enqueue_request(cl, sim, id, false);
        }
        if up {
            // Restart parked RTO probe chains.
            let ids: Vec<u64> = cl.borrow().outstanding.keys().copied().collect();
            for id in ids {
                Client::arm_rto(cl, sim, id);
            }
        }
        Client::emit(cl, sim, ClientEvent::Connectivity { up });
    }

    /// Reply arrival: charge unmarshalling, then complete the QRPC.
    fn on_reply(cl: &ClientRef, sim: &mut Sim, env: Envelope) {
        let cost = {
            let mut c = cl.borrow_mut();
            let m = c.cfg.cpu.marshal_cost(env.body.len());
            c.charge_serial(sim.now(), m)
        };
        let cl2 = cl.clone();
        sim.schedule_after(cost, move |sim| {
            let reply = match QrpcReply::from_shared(&env.body) {
                Ok(r) => r,
                Err(_) => {
                    sim.stats.incr("client.bad_reply");
                    sim.stats.incr("wire.decode_rejected.reply");
                    return;
                }
            };
            Client::complete(&cl2, sim, reply);
        });
    }

    /// Coalesced reply batch: one envelope carrying several replies the
    /// server committed in one group. One unmarshalling charge covers
    /// the whole envelope; the replies complete in commit order.
    fn on_reply_batch(cl: &ClientRef, sim: &mut Sim, env: Envelope) {
        let cost = {
            let mut c = cl.borrow_mut();
            let m = c.cfg.cpu.marshal_cost(env.body.len());
            c.charge_serial(sim.now(), m)
        };
        let cl2 = cl.clone();
        sim.schedule_after(cost, move |sim| {
            let batch = match ReplyBatch::from_shared(&env.body) {
                Ok(b) => b,
                Err(_) => {
                    sim.stats.incr("client.bad_reply");
                    sim.stats.incr("wire.decode_rejected.reply_batch");
                    return;
                }
            };
            sim.stats.add(
                "client.replies_coalesced",
                batch.replies.len().saturating_sub(1) as u64,
            );
            for reply in batch.replies {
                Client::complete(&cl2, sim, reply);
            }
        });
    }

    /// Server callback: another client committed a newer version of a
    /// cached object — mark the local copy stale.
    fn on_callback(cl: &ClientRef, sim: &mut Sim, env: Envelope) {
        let mut dec = Decoder::new(&env.body);
        let (Ok(urn_str), Ok(version)) = (dec.get_str(), dec.get_u64()) else {
            sim.stats.incr("client.bad_callback");
            return;
        };
        let Ok(urn) = Urn::parse(&urn_str) else {
            sim.stats.incr("client.bad_callback");
            return;
        };
        let marked = cl.borrow_mut().cache.invalidate(&urn, Version(version));
        if marked {
            sim.stats.incr("client.invalidations");
            Client::emit(
                cl,
                sim,
                ClientEvent::Invalidated {
                    urn,
                    version: Version(version),
                },
            );
        }
    }

    /// Re-issues an outstanding request to the object's current home
    /// shard under a fresh request id. Used when a reply proves the
    /// original destination cannot (or must not) serve it: the object
    /// migrated away, a replica holder's copy missed the session floor,
    /// or an `Ok` import landed below the monotonic-reads floor.
    ///
    /// The fresh id keeps at-most-once intact: the *old* id's dedup slot
    /// at the old destination stays poisoned with its non-executing
    /// reply, and the new destination sees a request it has never
    /// executed. The stable-log record of the original is kept (same
    /// `log_seq`): crash recovery re-issues the logged request to the
    /// then-current route, which is exactly this path replayed.
    fn redirect(cl: &ClientRef, sim: &mut Sim, req: u64) {
        let new_id = {
            let mut c = cl.borrow_mut();
            let Some(mut o) = c.outstanding.remove(&req) else {
                sim.stats.incr("client.duplicate_replies");
                return;
            };
            let new_id = RequestId(c.next_req);
            c.next_req += 1;
            // Always back to the home shard (migration-pin aware): the
            // dynamic read plane already had its chance.
            let dst = c.server_for(o.request.urn.as_str());
            o.request.req_id = new_id;
            o.request.acked_below = c.ack_floor_for(dst).min(new_id.0);
            o.request.read_vector = Vec::new();
            if o.class == OpClass::Export {
                // Ordered writes sequence per destination: a redirected
                // export consumes a fresh seq in the new home's space
                // (the old seq was drawn for — and burned at — the old
                // destination, whose server advanced past it when it
                // answered `WrongShard`).
                if let Ok(payload) = ExportPayload::from_bytes(&o.request.payload) {
                    if payload.session_seq > 0 {
                        if let Some(sess) = c.sessions.get_mut(&o.request.session.0) {
                            let seq = sess.next_seq_for(dst);
                            o.request.payload = ExportPayload {
                                session_seq: seq,
                                ..payload
                            }
                            .to_bytes();
                        }
                    }
                }
                // Writes-follow-reads floors for the new destination,
                // mirroring build_request.
                if c.cfg.shards.as_ref().is_some_and(|m| m.len() > 1) {
                    if let Some(sess) = c.sessions.get(&o.request.session.0) {
                        let mut rv: Vec<(String, u64)> = sess
                            .reads()
                            .filter(|(u, _)| c.server_for(u.as_str()) == dst)
                            .map(|(u, v)| (u.as_str().to_owned(), v.0))
                            .collect();
                        rv.sort();
                        rv.truncate(16);
                        o.request.read_vector = rv;
                    }
                }
            }
            o.dst = dst;
            o.enqueue_epoch = c.link_epoch;
            o.retries = 0;
            o.rto_armed = false;
            o.strikes = 0;
            o.rto_cur = c.cfg.rto;
            if let Some(u) = &o.urn {
                if o.class == OpClass::Import && c.inflight_imports.get(u) == Some(&req) {
                    c.inflight_imports.insert(u.clone(), new_id.0);
                }
            }
            c.outstanding.insert(new_id.0, o);
            new_id
        };
        sim.stats.incr("client.redirects");
        sim.trace("qrpc", format!("redirect req={req} -> req={}", new_id.0));
        Client::enqueue_request(cl, sim, new_id.0, true);
    }

    fn complete(cl: &ClientRef, sim: &mut Sim, reply: QrpcReply) {
        // Replica-plane redirects. A `WrongShard` answer means the
        // destination could not serve this request (object re-homed by a
        // migration, or a replica holder's copy was too stale for the
        // session's floor): re-issue to the object's current home. An
        // `Ok` import that lands *below* the session's monotonic-reads
        // floor can also happen under dynamic routing (a concurrent
        // export raised the floor while the replica read was in flight)
        // — re-read from home rather than weaken MR.
        let redirect = {
            let c = cl.borrow();
            match c.outstanding.get(&reply.req_id.0) {
                None => false,
                Some(o) => {
                    reply.status == OpStatus::WrongShard
                        || (o.class == OpClass::Import
                            && reply.status == OpStatus::Ok
                            && c.cfg.shards.as_ref().is_some_and(|m| m.has_dynamic())
                            && match (c.sessions.get(&o.request.session.0), &o.urn) {
                                (Some(sess), Some(u)) => {
                                    sess.guarantees.mr && reply.version < sess.read_floor(u)
                                }
                                _ => false,
                            })
                }
            }
        };
        if redirect {
            Client::redirect(cl, sim, reply.req_id.0);
            return;
        }

        let mut events: Vec<ClientEvent> = Vec::new();
        let done = {
            let mut c = cl.borrow_mut();
            let Some(o) = c.outstanding.remove(&reply.req_id.0) else {
                sim.stats.incr("client.duplicate_replies");
                return;
            };
            c.retire_log_record(reply.req_id.0, o.log_seq);
            if let Some(u) = &o.urn {
                c.cache.pin(u, -1);
                if o.class == OpClass::Import && c.inflight_imports.get(u) == Some(&reply.req_id.0)
                {
                    c.inflight_imports.remove(u);
                }
            }

            let mut outcome = Outcome {
                status: reply.status,
                value: Value::empty(),
                version: reply.version,
                tentative: false,
                from_cache: false,
                object: None,
            };

            match o.class {
                OpClass::Ping => {}
                OpClass::Invoke => {
                    if reply.status == OpStatus::Ok {
                        let mut dec = Decoder::new(&reply.payload);
                        if let Ok(s) = dec.get_str() {
                            outcome.value = Value::from(s);
                        }
                    }
                }
                OpClass::Import => {
                    if reply.status == OpStatus::Ok {
                        if let Ok(obj) = RoverObject::from_shared(&reply.payload) {
                            let urn = obj.urn.clone();
                            outcome.value = Value::str(urn.as_str());
                            outcome.object = Some(obj.clone());
                            for u in c.cache.install_committed(obj, sim.now()) {
                                events.push(ClientEvent::Evicted { urn: u });
                            }
                            if let Some(sess) = c.sessions.get_mut(&o.request.session.0) {
                                sess.note_read(&urn, reply.version);
                            }
                            events.push(ClientEvent::ImportDone {
                                urn,
                                from_cache: false,
                                tentative: false,
                                status: reply.status,
                            });
                        }
                    } else if let Some(u) = &o.urn {
                        events.push(ClientEvent::ImportDone {
                            urn: u.clone(),
                            from_cache: false,
                            tentative: false,
                            status: reply.status,
                        });
                    }
                }
                OpClass::Export => {
                    let urn = o.urn.clone().expect("exports carry a urn");
                    // Session bookkeeping.
                    let committed_version = match reply.status {
                        OpStatus::Ok | OpStatus::Resolved => reply.version,
                        _ => Version(0),
                    };
                    if let Some(sess) = c.sessions.get_mut(&o.request.session.0) {
                        sess.note_write_done(&urn, committed_version);
                    }
                    // Install the server's post-decision state.
                    if let Ok(obj) = RoverObject::from_shared(&reply.payload) {
                        outcome.object = Some(obj.clone());
                        for u in c.cache.install_committed(obj, sim.now()) {
                            events.push(ClientEvent::Evicted { urn: u });
                        }
                    }
                    // Tentative copy lives until the last pending export
                    // on this object is decided.
                    if let Some(n) = c.dirty_ops.get_mut(&urn) {
                        *n -= 1;
                        if *n == 0 {
                            c.dirty_ops.remove(&urn);
                            c.cache.clear_tentative(&urn);
                        }
                    }
                    if reply.status == OpStatus::Conflict {
                        sim.stats.incr("client.conflicts");
                        events.push(ClientEvent::ConflictReflected {
                            urn: urn.clone(),
                            req: reply.req_id,
                        });
                    }
                    events.push(ClientEvent::Committed {
                        urn,
                        req: reply.req_id,
                        status: reply.status,
                    });
                }
            }

            sim.stats.incr("client.qrpc_completed");
            sim.trace(
                "qrpc",
                format!("complete req={} status={:?}", reply.req_id.0, reply.status),
            );
            sim.stats
                .sample_duration("client.qrpc_rtt_ms", sim.now().since(o.issued_at));
            (o.promise, outcome)
        };

        for ev in events {
            Client::emit(cl, sim, ev);
        }
        let (promise, outcome) = done;
        promise.resolve(sim, outcome);
    }

    fn emit(cl: &ClientRef, sim: &mut Sim, ev: ClientEvent) {
        let listeners = cl.borrow().listeners.clone();
        for l in listeners {
            (l.borrow_mut())(sim, &ev);
        }
    }
}
