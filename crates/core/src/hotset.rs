//! Approximate hot-set tracking: a space-saving top-K counter.
//!
//! The load-balancing plane needs each shard to know which objects are
//! drawing the most QRPC traffic *right now*, without paying memory
//! proportional to the URN population (10k clients hit tens of
//! thousands of names). The classic answer is the *space-saving*
//! algorithm (Metwally et al.): keep exactly K counters; a hit on a
//! tracked name increments its counter; a hit on an untracked name
//! evicts the current minimum and inherits its count plus one. The
//! counters overestimate by at most the evicted minimum, which is
//! exactly the property a "which objects are hot" question tolerates.
//!
//! Updates are O(1) amortized in the population size: the only
//! non-constant work is the min-scan on eviction, which is O(K) with K
//! a small constant (the replication factor, typically 8–32) — never
//! O(distinct names). Per-epoch [`HotSet::decay`] halves every counter
//! so the set tracks the *recent* hot head rather than all of history.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};

/// FNV-1a (widened to 8-byte lanes) for the slot index: the map never
/// exceeds K+1 short URN keys and its iteration order is never
/// observed, so a cheap multiply hash beats SipHash on the per-hit
/// lookup without any flooding exposure or determinism risk.
#[derive(Debug, Default, Clone)]
struct FnvBuild;

struct Fnv(u64);

impl Hasher for Fnv {
    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche: the lane multiplies leave little entropy in
        // the low bits (URN keys share a long common prefix), and the
        // hash map indexes buckets by exactly those bits.
        let mut h = self.0;
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^= h >> 32;
        h
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        const M: u64 = 0x0100_0000_01b3;
        let mut it = bytes.chunks_exact(8);
        for chunk in it.by_ref() {
            let lane = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.0 = (self.0 ^ lane).wrapping_mul(M);
        }
        let rem = it.remainder();
        if !rem.is_empty() {
            let mut lane = [0u8; 8];
            lane[..rem.len()].copy_from_slice(rem);
            self.0 = (self.0 ^ u64::from_le_bytes(lane)).wrapping_mul(M);
        }
    }
}

impl BuildHasher for FnvBuild {
    type Hasher = Fnv;

    fn build_hasher(&self) -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

/// A space-saving top-K frequency tracker over string keys.
///
/// Layout: counters live in a dense slot vector and the hash map only
/// translates key → slot index. The eviction min-scan then runs over a
/// contiguous `u64` array (comparing keys only to break count ties)
/// instead of iterating a string-keyed map — an order of magnitude
/// cheaper on the churn-heavy workloads the tracker exists for.
#[derive(Debug, Default)]
pub struct HotSet {
    /// Maximum number of tracked keys (K).
    capacity: usize,
    /// Tracked key → index into `slots`.
    index: HashMap<String, usize, FnvBuild>,
    /// `(count, key)` per tracked key; counts (over-)estimate hits.
    slots: Vec<(u64, String)>,
    /// Total hits observed (for stats; survives decay).
    touched: u64,
    /// Evictions performed (tracker churn; high churn means K is too
    /// small for the skew).
    evicted: u64,
}

impl HotSet {
    /// Creates a tracker holding at most `capacity` keys.
    pub fn new(capacity: usize) -> HotSet {
        HotSet {
            capacity,
            index: HashMap::with_capacity_and_hasher(capacity + 1, FnvBuild),
            slots: Vec::with_capacity(capacity),
            touched: 0,
            evicted: 0,
        }
    }

    /// Records one hit on `key`. O(1) amortized; O(K) worst case on
    /// eviction of the minimum counter.
    #[inline]
    pub fn touch(&mut self, key: &str) {
        self.touched += 1;
        if let Some(&i) = self.index.get(key) {
            self.slots[i].0 += 1;
            return;
        }
        self.touch_miss(key);
    }

    /// The untracked-key slow path: admit or evict-and-replace.
    fn touch_miss(&mut self, key: &str) {
        if self.slots.len() < self.capacity {
            self.index.insert(key.to_owned(), self.slots.len());
            self.slots.push((1, key.to_owned()));
            return;
        }
        // Space-saving eviction: the newcomer replaces the minimum and
        // inherits its count + 1 (it *may* have occurred that often).
        // Ties break on the lexically smallest key so runs replay
        // byte-identically regardless of hash-map iteration order. Two
        // passes keep the common scan pure integer work: find the
        // minimum count first, compare keys only among its ties.
        let min_count = self
            .slots
            .iter()
            .map(|(c, _)| *c)
            .min()
            .expect("capacity > 0 and slots full");
        let min = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, (c, _))| *c == min_count)
            .min_by(|(_, (_, a)), (_, (_, b))| a.cmp(b))
            .map(|(i, _)| i)
            .expect("a minimum count exists");
        let (_, min_key) = std::mem::take(&mut self.slots[min]);
        self.index.remove(&min_key);
        self.index.insert(key.to_owned(), min);
        self.slots[min] = (min_count + 1, key.to_owned());
        self.evicted += 1;
    }

    /// The tracked hot set, hottest first (count desc, then key asc for
    /// determinism). At most K entries.
    pub fn top(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self.slots.iter().map(|(c, k)| (k.clone(), *c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Epoch decay: halves every counter and drops the ones that reach
    /// zero, so the set follows the *current* hot head.
    pub fn decay(&mut self) {
        let old = std::mem::take(&mut self.slots);
        self.index.clear();
        for (c, k) in old {
            let c = c / 2;
            if c > 0 {
                self.index.insert(k.clone(), self.slots.len());
                self.slots.push((c, k));
            }
        }
    }

    /// Number of keys currently tracked.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total hits observed over the tracker's lifetime.
    pub fn touched(&self) -> u64 {
        self.touched
    }

    /// Evictions performed over the tracker's lifetime.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Returns and resets the `(touched, evicted)` activity counters —
    /// the per-epoch deltas the server folds into its stats.
    pub fn take_activity(&mut self) -> (u64, u64) {
        (
            std::mem::take(&mut self.touched),
            std::mem::take(&mut self.evicted),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_the_heavy_hitter() {
        let mut h = HotSet::new(4);
        for i in 0..100 {
            h.touch("hot");
            h.touch(&format!("cold{}", i % 20));
        }
        let top = h.top();
        assert_eq!(top[0].0, "hot");
        assert!(top[0].1 >= 100, "heavy hitter count never undercounts");
        assert!(h.len() <= 4);
        assert!(h.evicted() > 0, "20 cold keys must churn a 4-slot set");
        assert_eq!(h.touched(), 200);
    }

    #[test]
    fn eviction_inherits_min_plus_one() {
        let mut h = HotSet::new(2);
        h.touch("a");
        h.touch("a");
        h.touch("b");
        h.touch("c"); // evicts b (count 1) → c enters at 2
        let top = h.top();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0], ("a".into(), 2));
        assert_eq!(top[1], ("c".into(), 2));
    }

    #[test]
    fn decay_halves_and_drops_zeroes() {
        let mut h = HotSet::new(4);
        h.touch("x");
        h.touch("x");
        h.touch("x");
        h.touch("y");
        h.decay();
        let top = h.top();
        assert_eq!(top, vec![("x".into(), 1)]);
        h.decay();
        assert!(h.is_empty());
    }

    #[test]
    fn deterministic_under_tie_eviction() {
        // All counts equal: the lexically smallest key is evicted, so
        // two identical runs produce identical sets.
        let run = || {
            let mut h = HotSet::new(3);
            for k in ["m", "z", "a", "q", "q"] {
                h.touch(k);
            }
            h.top()
        };
        assert_eq!(run(), run());
    }
}
