//! Relocatable dynamic objects: data + code, and their execution
//! environment.
//!
//! An RDO bundles named data fields with a script (its *code*) defining
//! methods as procs. The same object executes unchanged at the client
//! or at the server — that is the "relocatable" in the name — inside a
//! budgeted interpreter whose host commands (`rover::get` etc.) expose
//! the object's own fields. Method execution reports the interpreter
//! steps consumed so the caller can charge CPU time on whichever host
//! ran it.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use rover_script::{Budget, HostEnv, Interp, ScriptError, Value};
use rover_wire::{Decoder, Encoder, Version, Wire, WireError};

use crate::urn::Urn;
use crate::RoverError;

/// A relocatable dynamic object.
#[derive(Clone, Debug, PartialEq)]
pub struct RoverObject {
    /// Location-independent name; the authority picks the home server.
    pub urn: Urn,
    /// Application type, selecting the server-side conflict resolver.
    pub type_name: String,
    /// Method definitions: script source evaluated before each method
    /// call (procs, typically).
    pub code: String,
    /// Named data fields.
    pub fields: BTreeMap<String, String>,
    /// Commit version at the home server (0 = never committed).
    pub version: Version,
    /// Loaded-interpreter cache (see [`MethodCache`]); never on the
    /// wire, never part of equality.
    cache: MethodCache,
}

/// Cache of the interpreter produced by evaluating an object's `code`.
///
/// `run_method` used to rebuild a fresh interpreter and re-evaluate the
/// whole code blob on every invocation; this keeps the loaded template
/// and clones it per call instead. The cell is shared (`Rc`) rather
/// than per-value because every invocation path — client
/// `invoke_local`, client export, server `Invoke` — clones the object
/// and runs the method on a scratch copy: sharing means warming any
/// clone warms the stored original. A hit requires the entry's `code`
/// and `budget` to match the object's current ones, so mutating `code`
/// invalidates naturally. Cloning the template interpreter replays the
/// load's step count and output buffer exactly, keeping step accounting
/// byte-for-byte identical to a fresh load.
#[derive(Clone, Default)]
struct MethodCache(Rc<RefCell<Option<Rc<LoadedCode>>>>);

struct LoadedCode {
    code: String,
    budget: Budget,
    interp: Interp,
}

impl PartialEq for MethodCache {
    // The cache is invisible to object identity: two objects differing
    // only in cache warmth are equal.
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl fmt::Debug for MethodCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = if self.0.borrow().is_some() {
            "warm"
        } else {
            "cold"
        };
        write!(f, "MethodCache({state})")
    }
}

impl RoverObject {
    /// Creates an object with empty code and fields.
    pub fn new(urn: Urn, type_name: &str) -> RoverObject {
        RoverObject {
            urn,
            type_name: type_name.to_owned(),
            code: String::new(),
            fields: BTreeMap::new(),
            version: Version(0),
            cache: MethodCache::default(),
        }
    }

    /// Sets the method-definition script (builder style).
    pub fn with_code(mut self, code: &str) -> RoverObject {
        self.code = code.to_owned();
        self
    }

    /// Drops the cached loaded interpreter, forcing the next
    /// [`RoverObject::run_method`] to re-evaluate `code` from scratch.
    /// Benchmarks use this to measure the uncached path; correctness
    /// never requires it (cache hits re-check `code` and budget).
    pub fn clear_method_cache(&mut self) {
        *self.cache.0.borrow_mut() = None;
    }

    /// Sets a data field (builder style).
    pub fn with_field(mut self, key: &str, value: &str) -> RoverObject {
        self.fields.insert(key.to_owned(), value.to_owned());
        self
    }

    /// Returns a field's value, if present.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields.get(key).map(String::as_str)
    }

    /// Returns the approximate in-memory / on-wire size in bytes, used
    /// for cache accounting and transfer modelling.
    pub fn size_bytes(&self) -> usize {
        self.code.len()
            + self.urn.as_str().len()
            + self.type_name.len()
            + self
                .fields
                .iter()
                .map(|(k, v)| k.len() + v.len() + 8)
                .sum::<usize>()
    }

    /// Runs `method(args…)` against this object in a fresh budgeted
    /// interpreter, mutating fields through the `rover::*` host
    /// commands. Returns the result and execution accounting.
    ///
    /// # Examples
    ///
    /// ```
    /// use rover_core::{RoverObject, Urn};
    /// use rover_script::{Budget, Value};
    ///
    /// let mut obj = RoverObject::new(Urn::parse("urn:rover:d/c").unwrap(), "counter")
    ///     .with_code("proc bump {} {rover::set n [expr {[rover::get n 0] + 1}]}")
    ///     .with_field("n", "41");
    /// let run = obj.run_method("bump", &[], Budget::default()).unwrap();
    /// assert!(run.mutated);
    /// assert_eq!(obj.field("n"), Some("42"));
    /// ```
    pub fn run_method(
        &mut self,
        method: &str,
        args: &[Value],
        budget: Budget,
    ) -> Result<MethodRun, RoverError> {
        let before = self.fields.clone();
        let cached: Option<Rc<LoadedCode>> = {
            let cell = self.cache.0.borrow();
            match &*cell {
                Some(c) if c.code == self.code && c.budget == budget => Some(Rc::clone(c)),
                _ => None,
            }
        };
        let mut interp = match cached {
            // Cloning the template replays the load exactly: same steps
            // consumed, same pending `puts` output.
            Some(c) => c.interp.clone(),
            None => {
                let mut interp = Interp::with_budget(budget);
                let mut host = RdoHost {
                    urn: self.urn.clone(),
                    fields: &mut self.fields,
                    calls: 0,
                };
                interp.eval(&mut host, &self.code).map_err(|e| {
                    let msg = format!("loading code for {}: {e}", host.urn);
                    // Object code arrives off the wire: text that never
                    // parsed is hostile/corrupt input, distinguished
                    // from a script that ran and failed.
                    if e.parse {
                        RoverError::ScriptParse(msg)
                    } else {
                        RoverError::Exec(msg)
                    }
                })?;
                // Cache only *pure* loads (no host calls): a load that
                // read or wrote fields would bake those reads into the
                // template and replay them stale on later invocations.
                if host.calls == 0 {
                    *self.cache.0.borrow_mut() = Some(Rc::new(LoadedCode {
                        code: self.code.clone(),
                        budget,
                        interp: interp.clone(),
                    }));
                }
                interp
            }
        };
        if !interp.has_proc(method) {
            // Restore: a missing method must not leave partial effects
            // from code loading (code should only define procs anyway).
            self.fields = before;
            return Err(RoverError::NoSuchMethod(method.to_owned()));
        }
        let mut host = RdoHost {
            urn: self.urn.clone(),
            fields: &mut self.fields,
            calls: 0,
        };

        // Build the invocation as a proper list so arguments with spaces
        // survive quoting.
        let mut call = vec![Value::str(method)];
        call.extend(args.iter().cloned());
        let call_src = rover_script::format_list(&call);

        match interp.eval(&mut host, &call_src) {
            Ok(result) => {
                let mutated = *host.fields != before;
                Ok(MethodRun {
                    result,
                    steps: interp.steps_used(),
                    mutated,
                    output: interp.take_output(),
                })
            }
            Err(e) => {
                // Failed methods roll back field mutations.
                self.fields = before;
                if e.parse {
                    Err(RoverError::ScriptParse(e.to_string()))
                } else {
                    Err(RoverError::Exec(e.to_string()))
                }
            }
        }
    }
}

/// Builds a *collection* object: an index whose `members` field lists
/// the URNs of a prefetchable group (see
/// [`crate::Client::prefetch_collection`]).
pub fn collection_object(urn: Urn, members: &[Urn]) -> RoverObject {
    let list: Vec<rover_script::Value> = members
        .iter()
        .map(|u| rover_script::Value::str(u.as_str()))
        .collect();
    RoverObject::new(urn, "collection")
        .with_field("members", &rover_script::format_list(&list))
        .with_code("proc size {} {llength [rover::get members {}]}")
}

/// Accounting for one RDO method execution.
#[derive(Clone, Debug, PartialEq)]
pub struct MethodRun {
    /// The method's return value.
    pub result: Value,
    /// Interpreter steps consumed (CPU-model input).
    pub steps: u64,
    /// Whether any field changed.
    pub mutated: bool,
    /// Captured `puts` output.
    pub output: String,
}

/// Host commands exposed to RDO code.
///
/// | Command | Effect |
/// |---|---|
/// | `rover::get key` | read field (error if missing) |
/// | `rover::get key default` | read field with default |
/// | `rover::set key value` | write field |
/// | `rover::has key` | 1 if field exists |
/// | `rover::del key` | remove field |
/// | `rover::keys ?glob?` | list field names |
/// | `rover::urn` | this object's URN |
struct RdoHost<'a> {
    urn: Urn,
    fields: &'a mut BTreeMap<String, String>,
    /// Handled `rover::*` invocations; `run_method` caches a loaded
    /// interpreter only when the load made none (a pure load).
    calls: u64,
}

impl HostEnv for RdoHost<'_> {
    fn call(
        &mut self,
        _interp: &mut Interp,
        name: &str,
        args: &[Value],
    ) -> Option<Result<Value, ScriptError>> {
        let r = match name {
            "rover::get" => match args {
                [k] => match self.fields.get(&*k.as_str()) {
                    Some(v) => Ok(Value::str(v)),
                    None => Err(ScriptError::new(format!("no such field \"{k}\""))),
                },
                [k, default] => Ok(self
                    .fields
                    .get(&*k.as_str())
                    .map(Value::str)
                    .unwrap_or_else(|| default.clone())),
                _ => Err(ScriptError::new("usage: rover::get key ?default?")),
            },
            "rover::set" => match args {
                [k, v] => {
                    self.fields
                        .insert(k.as_str().into_owned(), v.as_str().into_owned());
                    Ok(v.clone())
                }
                _ => Err(ScriptError::new("usage: rover::set key value")),
            },
            "rover::has" => match args {
                [k] => Ok(Value::bool(self.fields.contains_key(&*k.as_str()))),
                _ => Err(ScriptError::new("usage: rover::has key")),
            },
            "rover::del" => match args {
                [k] => {
                    self.fields.remove(&*k.as_str());
                    Ok(Value::empty())
                }
                _ => Err(ScriptError::new("usage: rover::del key")),
            },
            "rover::keys" => {
                let pat = args.first().map(|v| v.as_str());
                let keys: Vec<Value> = self
                    .fields
                    .keys()
                    .filter(|k| pat.as_deref().is_none_or(|p| glob_lite(p, k)))
                    .map(Value::str)
                    .collect();
                Ok(Value::list(keys))
            }
            "rover::urn" => Ok(Value::str(self.urn.as_str())),
            _ => return None,
        };
        self.calls += 1;
        Some(r)
    }
}

// Minimal glob (`*` and `?`) for rover::keys; the full matcher lives in
// the script crate's `string match`.
fn glob_lite(pat: &str, s: &str) -> bool {
    let p: Vec<char> = pat.chars().collect();
    let t: Vec<char> = s.chars().collect();
    fn go(p: &[char], t: &[char]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some('*') => (0..=t.len()).any(|k| go(&p[1..], &t[k..])),
            Some('?') => !t.is_empty() && go(&p[1..], &t[1..]),
            Some(&c) => t.first() == Some(&c) && go(&p[1..], &t[1..]),
        }
    }
    go(&p, &t)
}

impl Wire for RoverObject {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(self.urn.as_str());
        enc.put_str(&self.type_name);
        enc.put_str(&self.code);
        self.version.encode(enc);
        let pairs: Vec<(&String, &String)> = self.fields.iter().collect();
        enc.put_seq(&pairs, |e, (k, v)| {
            e.put_str(k);
            e.put_str(v);
        });
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        let urn = dec.get_str()?;
        let urn = Urn::parse(&urn).map_err(|_| WireError::BadTag(0xBD))?;
        let type_name = dec.get_str()?;
        let code = dec.get_str()?;
        let version = Version::decode(dec)?;
        let pairs = dec.get_seq(|d| Ok((d.get_str()?, d.get_str()?)))?;
        Ok(RoverObject {
            urn,
            type_name,
            code,
            fields: pairs.into_iter().collect(),
            version,
            cache: MethodCache::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter() -> RoverObject {
        RoverObject::new(Urn::parse("urn:rover:test/counter").unwrap(), "counter")
            .with_code(
                "proc get {} {rover::get n 0}
                 proc add {k} {rover::set n [expr {[rover::get n 0] + $k}]}
                 proc reset {} {rover::del n}",
            )
            .with_field("n", "10")
    }

    #[test]
    fn method_reads_and_writes_fields() {
        let mut obj = counter();
        let run = obj
            .run_method("add", &[Value::Int(5)], Budget::default())
            .unwrap();
        assert!(run.mutated);
        assert!(run.steps > 0);
        assert_eq!(obj.field("n"), Some("15"));
        let run = obj.run_method("get", &[], Budget::default()).unwrap();
        assert_eq!(run.result, Value::Int(15));
        assert!(!run.mutated);
    }

    #[test]
    fn missing_method_is_reported_without_effects() {
        let mut obj = counter();
        let err = obj.run_method("nope", &[], Budget::default()).unwrap_err();
        assert!(matches!(err, RoverError::NoSuchMethod(_)));
        assert_eq!(obj.field("n"), Some("10"));
    }

    #[test]
    fn failing_method_rolls_back() {
        let mut obj = counter().with_code("proc boom {} {rover::set n 999; error kapow}");
        let err = obj.run_method("boom", &[], Budget::default()).unwrap_err();
        assert!(matches!(err, RoverError::Exec(_)));
        assert_eq!(obj.field("n"), Some("10"));
    }

    #[test]
    fn budget_bounds_method_execution() {
        let mut obj = counter().with_code("proc spin {} {while {1} {}}");
        let err = obj
            .run_method(
                "spin",
                &[],
                Budget {
                    max_steps: 5_000,
                    max_depth: 16,
                },
            )
            .unwrap_err();
        assert!(matches!(err, RoverError::Exec(msg) if msg.contains("budget")));
    }

    #[test]
    fn args_with_spaces_survive() {
        let mut obj = RoverObject::new(Urn::parse("urn:rover:t/echo").unwrap(), "echo")
            .with_code("proc echo {s} {return $s}");
        let run = obj
            .run_method(
                "echo",
                &[Value::str("two words {and braces}")],
                Budget::default(),
            )
            .unwrap();
        assert_eq!(run.result.as_str(), "two words {and braces}");
    }

    #[test]
    fn host_commands_cover_fields() {
        let mut obj = RoverObject::new(Urn::parse("urn:rover:t/h").unwrap(), "t").with_code(
            "proc probe {} {
                    rover::set a 1
                    rover::set ab 2
                    rover::set b 3
                    rover::del b
                    list [rover::has a] [rover::has b] [rover::keys a*] [rover::urn]
                }",
        );
        let run = obj.run_method("probe", &[], Budget::default()).unwrap();
        assert_eq!(run.result.as_str(), "1 0 {a ab} urn:rover:t/h");
    }

    #[test]
    fn mutating_code_invalidates_cached_interp() {
        let mut obj = counter();
        let r1 = obj.run_method("get", &[], Budget::default()).unwrap();
        assert_eq!(r1.result, Value::Int(10));
        // Mutate the code blob in place: the warm cache entry must not
        // serve the old proc table.
        obj.code = "proc get {} {return new-code}".to_owned();
        let r2 = obj.run_method("get", &[], Budget::default()).unwrap();
        assert_eq!(r2.result.as_str(), "new-code");
        // A changed budget also misses (budgets are part of identity).
        let r3 = obj
            .run_method(
                "get",
                &[],
                Budget {
                    max_steps: 9_000,
                    max_depth: 8,
                },
            )
            .unwrap();
        assert_eq!(r3.result.as_str(), "new-code");
    }

    #[test]
    fn cached_and_fresh_loads_agree_on_steps_and_results() {
        let mut warm = counter();
        let mut cold = counter();
        let w1 = warm
            .run_method("add", &[Value::Int(1)], Budget::default())
            .unwrap();
        let w2 = warm
            .run_method("add", &[Value::Int(1)], Budget::default())
            .unwrap(); // cache hit
        cold.run_method("add", &[Value::Int(1)], Budget::default())
            .unwrap();
        cold.clear_method_cache();
        let c2 = cold
            .run_method("add", &[Value::Int(1)], Budget::default())
            .unwrap(); // forced fresh load
        assert_eq!(w1.steps, w2.steps);
        assert_eq!(w2.steps, c2.steps);
        assert_eq!(w2.result, c2.result);
        assert_eq!(warm.field("n"), cold.field("n"));
    }

    #[test]
    fn clones_share_cache_warmth() {
        let mut obj = counter();
        let mut scratch = obj.clone();
        scratch.run_method("get", &[], Budget::default()).unwrap();
        // Warming the scratch clone warmed the original's cell.
        assert!(obj.cache.0.borrow().is_some());
        let run = obj.run_method("get", &[], Budget::default()).unwrap();
        assert_eq!(run.result, Value::Int(10));
    }

    #[test]
    fn impure_loads_are_not_cached() {
        // Top-level code that *reads* a field must re-run per invoke:
        // caching it would replay a stale read.
        let mut obj = RoverObject::new(Urn::parse("urn:rover:t/impure").unwrap(), "t")
            .with_code("proc snap {} {global loaded; return $loaded}\nset x [rover::get n 0]\nglobal loaded\nset loaded [rover::get n 0]")
            .with_field("n", "1");
        let r1 = obj.run_method("snap", &[], Budget::default()).unwrap();
        assert_eq!(r1.result.as_str(), "1");
        assert!(obj.cache.0.borrow().is_none());
        obj.fields.insert("n".into(), "2".into());
        let r2 = obj.run_method("snap", &[], Budget::default()).unwrap();
        assert_eq!(r2.result.as_str(), "2");
    }

    #[test]
    fn wire_roundtrip() {
        let obj = counter();
        let bytes = obj.to_bytes();
        let back = RoverObject::from_bytes(&bytes).unwrap();
        assert_eq!(back, obj);
    }

    #[test]
    fn size_accounts_fields_and_code() {
        let small = RoverObject::new(Urn::parse("urn:rover:t/s").unwrap(), "t");
        let big = small.clone().with_field("body", &"x".repeat(10_000));
        assert!(big.size_bytes() > small.size_bytes() + 10_000);
    }

    #[test]
    fn puts_output_is_captured() {
        let mut obj = RoverObject::new(Urn::parse("urn:rover:t/p").unwrap(), "t")
            .with_code("proc hello {} {puts side-channel; return ok}");
        let run = obj.run_method("hello", &[], Budget::default()).unwrap();
        assert_eq!(run.output, "side-channel\n");
        assert_eq!(run.result.as_str(), "ok");
    }
}
