//! Type-specific conflict resolution at the home server.
//!
//! "Update conflicts are detected at the server, where Rover attempts to
//! reconcile them. Because Rover can employ type-specific concurrency
//! control, we expect that many conflicts can be resolved automatically"
//! (paper §2, after Locus and Weihl/Liskov). A conflict exists when an
//! export's `base_version` is older than the server's current version —
//! some other client committed in between. The server then consults the
//! resolver registered for the object's *type*:
//!
//! - [`ReexecuteResolver`]: replay the operation against current state —
//!   correct whenever the type's operations commute (append-only
//!   folders, counters).
//! - [`RejectResolver`]: reflect every conflict to the user (the Lotus
//!   Notes policy the paper contrasts with).
//! - [`ScriptResolver`]: ask the object's own RDO code by invoking its
//!   `resolve` proc — the fully application-specific path.

use rover_script::{Budget, Value};
use rover_wire::Version;

use crate::object::RoverObject;
use crate::payload::ExportPayload;

/// A resolver's verdict on a conflicting export.
#[derive(Clone, Debug, PartialEq)]
pub enum Resolution {
    /// Re-execute the operation against the server's current state.
    Reexecute,
    /// Replace the object's state wholesale with this merged object.
    Merged(RoverObject),
    /// Unresolvable: reflect the conflict to the user.
    Reject,
}

/// Type-specific conflict resolution policy.
pub trait Resolver {
    /// Decides what to do with `op`, exported against `base_version`,
    /// now that the server holds `current`.
    fn resolve(
        &self,
        current: &RoverObject,
        base_version: Version,
        op: &ExportPayload,
    ) -> Resolution;

    /// Human-readable policy name (for tables and logs).
    fn name(&self) -> &'static str;
}

/// Re-executes conflicting operations (commutative types).
pub struct ReexecuteResolver;

impl Resolver for ReexecuteResolver {
    fn resolve(&self, _: &RoverObject, _: Version, _: &ExportPayload) -> Resolution {
        Resolution::Reexecute
    }

    fn name(&self) -> &'static str {
        "reexecute"
    }
}

/// Rejects all conflicting operations.
pub struct RejectResolver;

impl Resolver for RejectResolver {
    fn resolve(&self, _: &RoverObject, _: Version, _: &ExportPayload) -> Resolution {
        Resolution::Reject
    }

    fn name(&self) -> &'static str {
        "reject"
    }
}

/// Delegates to the object's own `resolve` proc.
///
/// The proc is called as `resolve <method> <args-list> <base-version>`
/// on a scratch copy of the current object; it may inspect and mutate
/// fields. Its return value selects the outcome: `accept` re-executes
/// the original operation, `merged` commits the scratch copy's state
/// (the proc performed the merge itself), anything else rejects. If the
/// object defines no `resolve` proc, the conflict is rejected.
#[derive(Default)]
pub struct ScriptResolver {
    /// Execution budget for resolver code.
    pub budget: Budget,
}

impl Resolver for ScriptResolver {
    fn resolve(
        &self,
        current: &RoverObject,
        base_version: Version,
        op: &ExportPayload,
    ) -> Resolution {
        let mut scratch = current.clone();
        let args = vec![
            Value::str(&op.method),
            Value::list(op.args.iter().map(Value::str).collect()),
            Value::Int(base_version.0 as i64),
        ];
        match scratch.run_method("resolve", &args, self.budget) {
            Ok(run) => match run.result.as_str().as_ref() {
                "accept" => Resolution::Reexecute,
                "merged" => Resolution::Merged(scratch),
                _ => Resolution::Reject,
            },
            Err(_) => Resolution::Reject,
        }
    }

    fn name(&self) -> &'static str {
        "script"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::urn::Urn;

    fn op(method: &str) -> ExportPayload {
        ExportPayload {
            method: method.into(),
            args: vec!["x".into()],
            session_seq: 0,
        }
    }

    fn obj(code: &str) -> RoverObject {
        RoverObject::new(Urn::parse("urn:rover:t/o").unwrap(), "t").with_code(code)
    }

    #[test]
    fn fixed_policies() {
        let o = obj("");
        assert_eq!(
            ReexecuteResolver.resolve(&o, Version(1), &op("m")),
            Resolution::Reexecute
        );
        assert_eq!(
            RejectResolver.resolve(&o, Version(1), &op("m")),
            Resolution::Reject
        );
    }

    #[test]
    fn script_resolver_accepts() {
        let o = obj("proc resolve {method args_list base} {
                if {$method eq \"append\"} {return accept}
                return reject
            }");
        let r = ScriptResolver::default();
        assert_eq!(
            r.resolve(&o, Version(1), &op("append")),
            Resolution::Reexecute
        );
        assert_eq!(
            r.resolve(&o, Version(1), &op("overwrite")),
            Resolution::Reject
        );
    }

    #[test]
    fn script_resolver_merges() {
        let o = obj("proc resolve {method args_list base} {
                rover::set merged_by resolver
                return merged
            }")
        .with_field("n", "1");
        match ScriptResolver::default().resolve(&o, Version(3), &op("set")) {
            Resolution::Merged(m) => {
                assert_eq!(m.field("merged_by"), Some("resolver"));
                assert_eq!(m.field("n"), Some("1"));
            }
            other => panic!("expected merge, got {other:?}"),
        }
    }

    #[test]
    fn missing_resolve_proc_rejects() {
        let o = obj("proc something_else {} {}");
        assert_eq!(
            ScriptResolver::default().resolve(&o, Version(1), &op("m")),
            Resolution::Reject
        );
    }

    #[test]
    fn resolver_sees_operation_details() {
        let o = obj("proc resolve {method args_list base} {
                if {[lindex $args_list 0] eq \"x\" && $base == 2} {return accept}
                return reject
            }");
        let r = ScriptResolver::default();
        assert_eq!(r.resolve(&o, Version(2), &op("m")), Resolution::Reexecute);
        assert_eq!(r.resolve(&o, Version(1), &op("m")), Resolution::Reject);
    }
}
