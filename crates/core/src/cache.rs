//! The client object cache: committed and tentative copies, LRU
//! eviction, and the accounting the access manager needs.
//!
//! "A mobile host imports objects into its local cache and exports
//! updated objects back to their home servers" (paper §2). Each entry
//! holds the last *committed* copy received from the home server plus an
//! optional *tentative* copy reflecting locally applied, not-yet-
//! committed exports (Bayou-style tentative data). Entries pinned by
//! pending operations are never evicted.

use std::collections::HashMap;

use rover_sim::SimTime;
use rover_wire::Version;

use crate::object::RoverObject;
use crate::urn::Urn;

/// One cached object.
#[derive(Debug)]
pub struct CacheEntry {
    /// Last committed copy from the home server.
    pub committed: RoverObject,
    /// Local copy with pending exports applied (None = clean).
    pub tentative: Option<RoverObject>,
    /// Number of QRPCs outstanding against this object (pin count).
    pub pending_ops: usize,
    /// User-requested hoard pin: never evicted while set.
    pub hoarded: bool,
    /// Last access time (LRU key).
    pub last_access: SimTime,
    /// A server callback announced this newer committed version; reads
    /// should refetch instead of serving the stale copy.
    pub invalidated_by: Option<Version>,
}

impl CacheEntry {
    /// Returns the copy a reader should see: tentative if allowed and
    /// present, else committed.
    pub fn read_copy(&self, accept_tentative: bool) -> &RoverObject {
        match (&self.tentative, accept_tentative) {
            (Some(t), true) => t,
            _ => &self.committed,
        }
    }

    /// Returns whether the entry has uncommitted local state.
    pub fn is_dirty(&self) -> bool {
        self.tentative.is_some()
    }

    fn size(&self) -> usize {
        self.committed.size_bytes() + self.tentative.as_ref().map(|t| t.size_bytes()).unwrap_or(0)
    }
}

/// The access manager's object cache.
pub struct Cache {
    entries: HashMap<Urn, CacheEntry>,
    capacity_bytes: usize,
    used_bytes: usize,
}

impl Cache {
    /// Creates a cache bounded at `capacity_bytes`.
    pub fn new(capacity_bytes: usize) -> Cache {
        Cache {
            entries: HashMap::new(),
            capacity_bytes,
            used_bytes: 0,
        }
    }

    /// Returns the entry for `urn`, updating its LRU timestamp.
    pub fn touch(&mut self, urn: &Urn, now: SimTime) -> Option<&mut CacheEntry> {
        match self.entries.get_mut(urn) {
            Some(e) => {
                e.last_access = now;
                Some(e)
            }
            None => None,
        }
    }

    /// Returns the entry without touching LRU state.
    pub fn peek(&self, urn: &Urn) -> Option<&CacheEntry> {
        self.entries.get(urn)
    }

    /// Returns the entry mutably without touching LRU state.
    pub fn peek_mut(&mut self, urn: &Urn) -> Option<&mut CacheEntry> {
        self.entries.get_mut(urn)
    }

    /// Inserts or replaces the committed copy for `urn`, preserving any
    /// tentative copy and pin count. Returns URNs evicted to make room.
    pub fn install_committed(&mut self, obj: RoverObject, now: SimTime) -> Vec<Urn> {
        let urn = obj.urn.clone();
        match self.entries.get_mut(&urn) {
            Some(e) => {
                self.used_bytes -= e.size();
                // The install comes from the home server, which is
                // authoritative: any invalidation marker is now moot
                // (polling invalidates speculatively with version+1).
                e.invalidated_by = None;
                e.committed = obj;
                e.last_access = now;
                let sz = e.size();
                self.used_bytes += sz;
            }
            None => {
                let e = CacheEntry {
                    committed: obj,
                    tentative: None,
                    pending_ops: 0,
                    hoarded: false,
                    last_access: now,
                    invalidated_by: None,
                };
                self.used_bytes += e.size();
                self.entries.insert(urn, e);
            }
        }
        self.evict_to_fit()
    }

    /// Replaces (or sets) the tentative copy for a cached object.
    ///
    /// # Panics
    ///
    /// Panics if the object is not cached; exports require an imported
    /// copy, which the access manager guarantees.
    pub fn set_tentative(&mut self, urn: &Urn, obj: RoverObject) {
        let e = self
            .entries
            .get_mut(urn)
            .expect("set_tentative on uncached object");
        self.used_bytes -= e.size();
        e.tentative = Some(obj);
        self.used_bytes += e.size();
    }

    /// Drops the tentative copy (all pending exports resolved).
    pub fn clear_tentative(&mut self, urn: &Urn) {
        if let Some(e) = self.entries.get_mut(urn) {
            self.used_bytes -= e.size();
            e.tentative = None;
            self.used_bytes += e.size();
        }
    }

    /// Adjusts the pin count for `urn` by `delta`.
    pub fn pin(&mut self, urn: &Urn, delta: isize) {
        if let Some(e) = self.entries.get_mut(urn) {
            e.pending_ops = (e.pending_ops as isize + delta).max(0) as usize;
        }
    }

    /// Returns the committed version of a cached object (0 if absent).
    pub fn version(&self, urn: &Urn) -> Version {
        self.entries
            .get(urn)
            .map(|e| e.committed.version)
            .unwrap_or(Version(0))
    }

    /// Returns `true` if `urn` is cached.
    pub fn contains(&self, urn: &Urn) -> bool {
        self.entries.contains_key(urn)
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes currently accounted.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Sets or clears the user hoard pin on a cached object; returns
    /// whether the object was cached.
    pub fn set_hoarded(&mut self, urn: &Urn, on: bool) -> bool {
        match self.entries.get_mut(urn) {
            Some(e) => {
                e.hoarded = on;
                true
            }
            None => false,
        }
    }

    /// Marks a cached object stale: a server callback reported
    /// `newer` as committed elsewhere. No-op if the cached copy is
    /// already at least that fresh.
    pub fn invalidate(&mut self, urn: &Urn, newer: Version) -> bool {
        match self.entries.get_mut(urn) {
            Some(e) if e.committed.version < newer => {
                e.invalidated_by = Some(newer);
                true
            }
            _ => false,
        }
    }

    /// Removes an entry outright (used by tests and invalidation).
    pub fn remove(&mut self, urn: &Urn) -> Option<CacheEntry> {
        let e = self.entries.remove(urn)?;
        self.used_bytes -= e.size();
        Some(e)
    }

    /// Evicts clean, unpinned, least-recently-used entries until within
    /// capacity. Dirty (tentative) entries are never evicted — they hold
    /// the only copy of the user's uncommitted work.
    fn evict_to_fit(&mut self) -> Vec<Urn> {
        let mut evicted = Vec::new();
        while self.used_bytes > self.capacity_bytes {
            let victim = self
                .entries
                .iter()
                .filter(|(_, e)| e.pending_ops == 0 && !e.is_dirty() && !e.hoarded)
                .min_by_key(|(_, e)| e.last_access)
                .map(|(u, _)| u.clone());
            match victim {
                Some(u) => {
                    self.remove(&u);
                    evicted.push(u);
                }
                None => break, // Everything is pinned or dirty.
            }
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(path: &str, bytes: usize) -> RoverObject {
        RoverObject::new(Urn::parse(&format!("urn:rover:t/{path}")).unwrap(), "t")
            .with_field("body", &"x".repeat(bytes))
    }

    fn urn(path: &str) -> Urn {
        Urn::parse(&format!("urn:rover:t/{path}")).unwrap()
    }

    #[test]
    fn install_and_read() {
        let mut c = Cache::new(1 << 20);
        c.install_committed(obj("a", 100), SimTime::from_micros(1));
        assert!(c.contains(&urn("a")));
        let e = c.touch(&urn("a"), SimTime::from_micros(2)).unwrap();
        assert_eq!(e.read_copy(true).field("body").unwrap().len(), 100);
        assert_eq!(e.last_access, SimTime::from_micros(2));
    }

    #[test]
    fn tentative_copy_shadows_committed_when_accepted() {
        let mut c = Cache::new(1 << 20);
        c.install_committed(obj("a", 10), SimTime::ZERO);
        let mut t = obj("a", 10);
        t.fields.insert("extra".into(), "local".into());
        c.set_tentative(&urn("a"), t);
        let e = c.peek(&urn("a")).unwrap();
        assert!(e.is_dirty());
        assert_eq!(e.read_copy(true).field("extra"), Some("local"));
        assert_eq!(e.read_copy(false).field("extra"), None);
        c.clear_tentative(&urn("a"));
        assert!(!c.peek(&urn("a")).unwrap().is_dirty());
    }

    #[test]
    fn lru_eviction_under_pressure() {
        let mut c = Cache::new(700);
        c.install_committed(obj("a", 300), SimTime::from_micros(1));
        c.install_committed(obj("b", 300), SimTime::from_micros(2));
        // Touch `a` so `b` becomes LRU.
        c.touch(&urn("a"), SimTime::from_micros(3));
        let evicted = c.install_committed(obj("c", 300), SimTime::from_micros(4));
        assert_eq!(evicted, vec![urn("b")]);
        assert!(c.contains(&urn("a")));
        assert!(c.contains(&urn("c")));
    }

    #[test]
    fn pinned_and_dirty_entries_survive_eviction() {
        let mut c = Cache::new(800);
        c.install_committed(obj("pinned", 300), SimTime::from_micros(1));
        c.pin(&urn("pinned"), 1);
        c.install_committed(obj("dirty", 300), SimTime::from_micros(2));
        let mut t = obj("dirty", 300);
        t.fields.insert("dirty".into(), "1".into());
        c.set_tentative(&urn("dirty"), t);
        let evicted = c.install_committed(obj("new", 300), SimTime::from_micros(3));
        // Nothing evictable: over capacity but pinned/dirty survive.
        assert!(evicted.is_empty() || !evicted.contains(&urn("pinned")));
        assert!(c.contains(&urn("pinned")));
        assert!(c.contains(&urn("dirty")));
    }

    #[test]
    fn byte_accounting_balances() {
        let mut c = Cache::new(1 << 20);
        c.install_committed(obj("a", 100), SimTime::ZERO);
        c.install_committed(obj("b", 200), SimTime::ZERO);
        let before = c.used_bytes();
        c.set_tentative(&urn("a"), obj("a", 100));
        assert!(c.used_bytes() > before);
        c.clear_tentative(&urn("a"));
        assert_eq!(c.used_bytes(), before);
        c.remove(&urn("a"));
        c.remove(&urn("b"));
        assert_eq!(c.used_bytes(), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn reinstall_replaces_committed_in_place() {
        let mut c = Cache::new(1 << 20);
        c.install_committed(obj("a", 100), SimTime::ZERO);
        let mut newer = obj("a", 50);
        newer.version = Version(9);
        c.install_committed(newer, SimTime::from_micros(5));
        assert_eq!(c.version(&urn("a")), Version(9));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn pin_never_goes_negative() {
        let mut c = Cache::new(1 << 20);
        c.install_committed(obj("a", 10), SimTime::ZERO);
        c.pin(&urn("a"), -5);
        assert_eq!(c.peek(&urn("a")).unwrap().pending_ops, 0);
    }
}
