//! User-notification events.
//!
//! "Because the mobile environment may rapidly change from moment to
//! moment, it is important to present the user with information about
//! its current state" (paper §3.4). Applications register listeners on
//! the client; the access manager emits an event whenever consistency
//! or connectivity state changes in a way a user interface would
//! surface.

use rover_wire::{OpStatus, RequestId};

use crate::urn::Urn;

/// Events emitted by the client access manager.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientEvent {
    /// The active link's connectivity changed.
    Connectivity {
        /// True when connected.
        up: bool,
    },
    /// An import completed (from cache or from the home server).
    ImportDone {
        /// Object imported.
        urn: Urn,
        /// Served locally without network traffic.
        from_cache: bool,
        /// Whether the data is tentative.
        tentative: bool,
        /// Final status.
        status: OpStatus,
    },
    /// A local export was applied tentatively (the user sees the effect
    /// now; commit happens later).
    TentativeApplied {
        /// Object updated.
        urn: Urn,
        /// The queued QRPC carrying the update.
        req: RequestId,
    },
    /// A queued export reached the home server and was decided.
    Committed {
        /// Object updated.
        urn: Urn,
        /// The QRPC that committed.
        req: RequestId,
        /// `Ok`, `Resolved` (auto-reconciled) or `Conflict` (reflected
        /// to the user).
        status: OpStatus,
    },
    /// A conflicting update could not be auto-resolved; the user must
    /// reconcile.
    ConflictReflected {
        /// Object in conflict.
        urn: Urn,
        /// The rejected QRPC.
        req: RequestId,
    },
    /// The cache evicted an object to stay within capacity.
    Evicted {
        /// Object evicted.
        urn: Urn,
    },
    /// A QRPC was retransmitted after a suspected loss.
    Retransmit {
        /// The retransmitted request.
        req: RequestId,
    },
    /// A queued QRPC exhausted its retransmission budget; the client
    /// gave up and resolved its promise with
    /// [`OpStatus::Unreachable`].
    Unreachable {
        /// The abandoned request.
        req: RequestId,
        /// Object it targeted, if any.
        urn: Option<Urn>,
    },
    /// A server callback reported a newer committed version of a cached
    /// object; the local copy is stale.
    Invalidated {
        /// Object invalidated.
        urn: Urn,
        /// The newer committed version at the home server.
        version: rover_wire::Version,
    },
}

/// Events emitted by a home server's durability plane. The soak harness
/// and tests observe crash/recovery transitions through these; an
/// operator console would surface them the way §3.4's client events
/// surface connectivity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServerEvent {
    /// The server crashed (a scripted crash point fired, or a
    /// write-ahead-log append failed). All volatile state is gone;
    /// requests are dropped until recovery.
    Crashed {
        /// Commits made durable before the crash
        /// (`server.wal_appends` at crash time).
        durable_commits: u64,
    },
    /// Crash-restart recovery rebuilt the server from checkpoint + log
    /// replay.
    Recovered {
        /// Commit records replayed from the log (after the newest
        /// checkpoint).
        commits: u64,
        /// Torn/corrupt tail bytes the recovery scan discarded.
        truncated_tail: u64,
        /// Held out-of-order writes dropped by the crash (clients
        /// retransmit them).
        held_dropped: u64,
    },
    /// A checkpoint was written and the log compacted behind it.
    Checkpoint {
        /// Device size in bytes after compaction.
        device_bytes: u64,
    },
    /// A group-commit batch was flushed durably as one WAL record
    /// ([`crate::CommitPolicy::Group`]); its replies are now eligible to
    /// leave the host.
    GroupCommit {
        /// Commits made durable by this flush.
        records: usize,
        /// Framed bytes the flush forced to the device.
        wal_bytes: usize,
    },
}
