//! The Rover home server.
//!
//! Every object has a home server: the primary copy lives here, commit
//! versions are assigned here, and conflicting exports are detected and
//! reconciled here (paper §2). The server also provides the server-side
//! RDO execution environment, so clients can ship function instead of
//! data (`Invoke`). Requests are executed at-most-once: a dedup cache
//! keyed by (client, request-id) replays the original reply to
//! retransmissions.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::rc::Rc;

use rover_net::{HostSched, LinkId, Net, SchedRef, SmtpRelay, SmtpRelayRef};
use rover_sim::Sim;
use rover_wire::{
    Bytes, Encoder, Envelope, HostId, MsgKind, OpStatus, QrpcReply, QrpcRequest, RoverOp, Version,
    Wire,
};

use crate::config::ServerConfig;
use crate::object::RoverObject;
use crate::payload::{ExportPayload, InvokePayload};
use crate::resolve::{RejectResolver, Resolution, Resolver};
use crate::urn::Urn;

/// Shared handle to a server.
pub type ServerRef = Rc<RefCell<Server>>;

/// How replies reach one client.
struct ReplyRoute {
    /// Candidate links, best first.
    links: Vec<LinkId>,
    /// SMTP relay fallback: used when every link is down, so the reply
    /// is spooled instead of waiting (split-phase QRPC).
    smtp: Option<SmtpRelayRef>,
    /// Per-client outbound scheduler: replies carry their request's
    /// priority, so a foreground import's reply overtakes queued bulk
    /// prefetch replies (the server end of the paper's network
    /// scheduler).
    sched: Option<SchedRef>,
}

/// A Rover home server.
pub struct Server {
    cfg: ServerConfig,
    net: Net,
    routes: HashMap<u32, ReplyRoute>,
    store: HashMap<Urn, RoverObject>,
    resolvers: HashMap<String, Box<dyn Resolver>>,
    /// At-most-once replay cache, FIFO-bounded.
    dedup: HashMap<(u32, u64), QrpcReply>,
    dedup_order: VecDeque<(u32, u64)>,
    /// Per-client acknowledgement floor, piggybacked on requests
    /// (`QrpcRequest::acked_below`): every request id strictly below it
    /// had its reply processed at the client, so its dedup entry can
    /// never be needed again and is safe to evict.
    ack_floor: HashMap<u32, u64>,
    /// Request ids this server has executed, per client, pruned below
    /// the acknowledgement floor. Detects the unsafe case where a
    /// request re-executes because its dedup entry was evicted early.
    executed: HashMap<u32, std::collections::BTreeSet<u64>>,
    /// Per (client, session): next admissible ordered-write sequence.
    expected_seq: HashMap<(u32, u64), u64>,
    /// Ordered writes held for a predecessor.
    held: HashMap<(u32, u64), BTreeMap<u64, QrpcRequest>>,
    /// Single-CPU serialization horizon for execution costs.
    cpu_free_at: rover_sim::SimTime,
    /// Clients holding an imported copy of each object (callback set).
    importers: HashMap<Urn, std::collections::HashSet<u32>>,
    /// Accepted authentication tokens; `None` disables authentication.
    accepted_tokens: Option<std::collections::HashSet<u64>>,
}

impl Server {
    /// Creates a server and registers its request handler on the
    /// network.
    pub fn new(net: &Net, cfg: ServerConfig) -> ServerRef {
        let server = Rc::new(RefCell::new(Server {
            cfg,
            net: net.clone(),
            routes: HashMap::new(),
            store: HashMap::new(),
            resolvers: HashMap::new(),
            dedup: HashMap::new(),
            dedup_order: VecDeque::new(),
            ack_floor: HashMap::new(),
            executed: HashMap::new(),
            expected_seq: HashMap::new(),
            held: HashMap::new(),
            cpu_free_at: rover_sim::SimTime::ZERO,
            importers: HashMap::new(),
            accepted_tokens: None,
        }));
        let weak = Rc::downgrade(&server);
        let host = server.borrow().cfg.host;
        net.register_host(
            host,
            rover_net::wrap_reassembly(move |sim: &mut Sim, _net: &Net, env: Envelope| {
                if env.kind != MsgKind::Request {
                    return;
                }
                if let Some(sv) = weak.upgrade() {
                    Server::on_request(&sv, sim, env);
                }
            }),
        );
        server
    }

    /// Installs (or replaces) an object; assigns version 1 if the object
    /// was never committed. Returns the stored version.
    pub fn put_object(&mut self, mut obj: RoverObject) -> Version {
        if obj.version == Version(0) {
            obj.version = Version(1);
        }
        let v = obj.version;
        self.store.insert(obj.urn.clone(), obj);
        v
    }

    /// Returns the stored object, if any.
    pub fn get_object(&self, urn: &Urn) -> Option<&RoverObject> {
        self.store.get(urn)
    }

    /// Number of stored objects.
    pub fn object_count(&self) -> usize {
        self.store.len()
    }

    /// Declares a link used to reach `client`; call once per candidate
    /// interface, best quality first.
    pub fn add_route(&mut self, client: HostId, link: LinkId) {
        let host = self.cfg.host;
        let net = self.net.clone();
        let route = self.routes.entry(client.0).or_insert_with(|| ReplyRoute {
            links: Vec::new(),
            smtp: None,
            sched: None,
        });
        route.links.push(link);
        let mode = self.cfg.sched_mode;
        let mtu = self.cfg.mtu;
        let sched = route.sched.get_or_insert_with(|| {
            let s = HostSched::new(host, mode);
            HostSched::set_mtu(&s, mtu);
            s
        });
        HostSched::attach_link(sched, &net, link);
    }

    /// Declares an SMTP fallback for replies to `client`.
    pub fn add_smtp_route(&mut self, client: HostId, relay: SmtpRelayRef) {
        self.routes
            .entry(client.0)
            .or_insert_with(|| ReplyRoute {
                links: Vec::new(),
                smtp: None,
                sched: None,
            })
            .smtp = Some(relay);
    }

    /// Registers the conflict resolver for an object type. Types without
    /// a registered resolver reject all conflicts.
    pub fn register_resolver(&mut self, type_name: &str, resolver: Box<dyn Resolver>) {
        self.resolvers.insert(type_name.to_owned(), resolver);
    }

    /// Requires every request to present one of `tokens` (the paper's
    /// server "authenticates requests from client applications").
    /// Unauthenticated requests are answered with `Rejected`.
    pub fn require_auth(&mut self, tokens: &[u64]) {
        self.accepted_tokens = Some(tokens.iter().copied().collect());
    }

    /// Serializes the server's durable state (for checkpointing /
    /// restart): the object store plus the per-session write-ordering
    /// floors. Ordering state must survive a restart or ordered exports
    /// issued after it would wait forever for predecessors the old
    /// incarnation already admitted.
    pub fn export_store(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u32(0x524F_5631); // "ROV1"
        let mut objs: Vec<&RoverObject> = self.store.values().collect();
        objs.sort_by(|a, b| a.urn.cmp(&b.urn));
        enc.put_u32(objs.len() as u32);
        for o in objs {
            o.encode(&mut enc);
        }
        let mut seqs: Vec<((u32, u64), u64)> =
            self.expected_seq.iter().map(|(k, v)| (*k, *v)).collect();
        seqs.sort();
        enc.put_u32(seqs.len() as u32);
        for ((client, session), expected) in seqs {
            enc.put_u32(client);
            enc.put_u64(session);
            enc.put_u64(expected);
        }
        enc.into_vec()
    }

    /// Restores state written by [`Server::export_store`]. Object
    /// versions are preserved, so clients holding cached copies remain
    /// consistent across the restart. The at-most-once dedup cache does
    /// *not* survive (as in a real restart); retransmissions of already-
    /// committed exports surface as conflicts and go through resolution.
    pub fn import_store(&mut self, bytes: &[u8]) -> Result<usize, crate::RoverError> {
        let mut dec = rover_wire::Decoder::new(bytes);
        let magic = dec.get_u32().map_err(crate::RoverError::from)?;
        if magic != 0x524F_5631 {
            return Err(crate::RoverError::Wire("bad checkpoint magic".into()));
        }
        let n = dec.get_u32().map_err(crate::RoverError::from)?;
        let mut loaded = 0;
        for _ in 0..n {
            let obj = RoverObject::decode(&mut dec).map_err(crate::RoverError::from)?;
            self.store.insert(obj.urn.clone(), obj);
            loaded += 1;
        }
        let m = dec.get_u32().map_err(crate::RoverError::from)?;
        for _ in 0..m {
            let client = dec.get_u32().map_err(crate::RoverError::from)?;
            let session = dec.get_u64().map_err(crate::RoverError::from)?;
            let expected = dec.get_u64().map_err(crate::RoverError::from)?;
            self.expected_seq.insert((client, session), expected);
        }
        Ok(loaded)
    }

    // ------------------------------------------------------------------

    /// Serializes an execution cost behind earlier server work.
    fn charge_serial(
        &mut self,
        now: rover_sim::SimTime,
        cost: rover_sim::SimDuration,
    ) -> rover_sim::SimDuration {
        let start = self.cpu_free_at.max(now);
        let done = start + cost;
        self.cpu_free_at = done;
        done.since(now)
    }

    fn on_request(sv: &ServerRef, sim: &mut Sim, env: Envelope) {
        // Charge unmarshalling cost, then process.
        let cost = {
            let mut s = sv.borrow_mut();
            let m = s.cfg.cpu.marshal_cost(env.body.len());
            s.charge_serial(sim.now(), m)
        };
        let sv2 = sv.clone();
        sim.schedule_after(cost, move |sim| {
            let req = match QrpcRequest::from_shared(&env.body) {
                Ok(r) => r,
                Err(_) => {
                    sim.stats.incr("server.bad_request");
                    return;
                }
            };
            Server::admit(&sv2, sim, req);
        });
    }

    /// Ordering gate: ordered exports must arrive in per-session
    /// sequence; later ones are held, duplicates replay the cached
    /// reply.
    fn admit(sv: &ServerRef, sim: &mut Sim, req: QrpcRequest) {
        // Authentication gate: reject before any state is touched.
        let authed = match &sv.borrow().accepted_tokens {
            None => true,
            Some(set) => set.contains(&req.auth),
        };
        if !authed {
            sim.stats.incr("server.auth_rejected");
            let reply = QrpcReply {
                req_id: req.req_id,
                status: OpStatus::Rejected,
                version: Version(0),
                payload: Bytes::new(),
            };
            Server::send_reply(sv, sim, req.client, reply, req.priority);
            return;
        }

        // Advance this client's acknowledgement floor (piggybacked on
        // every request) and prune executed-id state below it.
        let floor = {
            let mut s = sv.borrow_mut();
            let floor = s.ack_floor.entry(req.client.0).or_insert(0);
            if req.acked_below > *floor {
                *floor = req.acked_below;
            }
            let floor = *floor;
            if let Some(ex) = s.executed.get_mut(&req.client.0) {
                *ex = ex.split_off(&floor);
            }
            floor
        };

        // At-most-once: a replayed request gets its original reply.
        let key = (req.client.0, req.req_id.0);
        let cached = sv.borrow().dedup.get(&key).cloned();
        if let Some(reply) = cached {
            sim.stats.incr("server.dedup_replay");
            sim.trace("server", format!("dedup replay req={}", req.req_id.0));
            Server::send_reply(sv, sim, req.client, reply, req.priority);
            return;
        }

        // A request from below the floor is a duplicate whose reply the
        // client already processed (e.g. a network-duplicated copy
        // straggling in after the acknowledgement). Its dedup entry may
        // legitimately be gone; never execute it again — answer with
        // the current committed state.
        if req.req_id.0 < floor {
            sim.stats.incr("server.below_floor_duplicate");
            sim.trace(
                "server",
                format!("below-floor duplicate req={} floor={}", req.req_id.0, floor),
            );
            let reply = Server::state_reply(sv, &req);
            Server::send_reply(sv, sim, req.client, reply, req.priority);
            return;
        }

        let ordered_seq = match &req.op {
            RoverOp::Export { .. } => ExportPayload::from_shared(&req.payload)
                .map(|p| p.session_seq)
                .unwrap_or(0),
            _ => 0,
        };
        if ordered_seq > 0 {
            let skey = (req.client.0, req.session.0);
            let expected = {
                let mut s = sv.borrow_mut();
                *s.expected_seq.entry(skey).or_insert(1)
            };
            if ordered_seq > expected {
                sim.stats.incr("server.held_out_of_order");
                sv.borrow_mut()
                    .held
                    .entry(skey)
                    .or_default()
                    .insert(ordered_seq, req);
                return;
            }
            if ordered_seq < expected {
                // A stale duplicate whose dedup entry was evicted: never
                // re-execute; answer with the current committed state.
                sim.stats.incr("server.stale_duplicate");
                let reply = Server::state_reply(sv, &req);
                Server::send_reply(sv, sim, req.client, reply, req.priority);
                return;
            }
            // ordered_seq == expected: process, then drain any held
            // successors.
            Server::process(sv, sim, req);
            loop {
                let next = {
                    let mut s = sv.borrow_mut();
                    let exp = s.expected_seq.get(&skey).copied().unwrap_or(1);
                    s.held.get_mut(&skey).and_then(|h| h.remove(&exp))
                };
                match next {
                    Some(r) => Server::process(sv, sim, r),
                    None => break,
                }
            }
        } else {
            Server::process(sv, sim, req);
        }
    }

    /// Reply reflecting the current committed state of the request's
    /// object, for duplicates that must never re-execute.
    fn state_reply(sv: &ServerRef, req: &QrpcRequest) -> QrpcReply {
        let s = sv.borrow();
        let obj = Urn::parse(&req.urn)
            .ok()
            .and_then(|u| s.store.get(&u).cloned());
        match obj {
            Some(o) => QrpcReply {
                req_id: req.req_id,
                status: OpStatus::Ok,
                version: o.version,
                payload: o.to_bytes(),
            },
            None => QrpcReply {
                req_id: req.req_id,
                status: OpStatus::NoSuchObject,
                version: Version(0),
                payload: Bytes::new(),
            },
        }
    }

    fn process(sv: &ServerRef, sim: &mut Sim, req: QrpcRequest) {
        let client = req.client;
        // Parse the request URN exactly once; execution and the
        // callback fan-out below both use this parse.
        let parsed = Urn::parse(&req.urn).ok();
        let (reply, steps) = {
            let mut s = sv.borrow_mut();
            // A second execution of the same request id means its dedup
            // entry was evicted while the client could still retransmit
            // — the at-most-once hazard the acknowledgement floor
            // exists to prevent. Counted and traced, never silent.
            let seen = s
                .executed
                .get(&req.client.0)
                .is_some_and(|ex| ex.contains(&req.req_id.0));
            if seen {
                sim.stats.incr("server.dedup_miss_reexec");
                sim.trace(
                    "server",
                    format!("dedup entry evicted; re-executing req={}", req.req_id.0),
                );
            }
            s.execute(&req, parsed.as_ref())
        };

        // Record dedup + ordering bookkeeping.
        {
            let mut s = sv.borrow_mut();
            if let RoverOp::Export { .. } = &req.op {
                if let Ok(p) = ExportPayload::from_shared(&req.payload) {
                    if p.session_seq > 0 {
                        let skey = (req.client.0, req.session.0);
                        let e = s.expected_seq.entry(skey).or_insert(1);
                        *e = (*e).max(p.session_seq + 1);
                    }
                }
            }
            let key = (req.client.0, req.req_id.0);
            s.executed
                .entry(req.client.0)
                .or_default()
                .insert(req.req_id.0);
            if s.dedup.insert(key, reply.clone()).is_none() {
                s.dedup_order.push_back(key);
                // Evict only entries the owning client has acknowledged
                // (id below its floor): an entry at or above the floor
                // may still be needed to absorb a retransmission, so
                // its eviction is deferred — the cache grows past
                // capacity and retries on the next insert.
                while s.dedup_order.len() > s.cfg.dedup_capacity {
                    let evictable = s
                        .dedup_order
                        .iter()
                        .position(|k| k.1 < s.ack_floor.get(&k.0).copied().unwrap_or(0));
                    match evictable {
                        Some(i) => {
                            if let Some(old) = s.dedup_order.remove(i) {
                                s.dedup.remove(&old);
                            }
                        }
                        None => {
                            sim.stats.incr("server.dedup_evict_deferred");
                            break;
                        }
                    }
                }
            }
        }

        // Charge execution + reply marshalling, then transmit.
        let total = {
            let mut s = sv.borrow_mut();
            let raw = s.cfg.cpu.interp_cost(steps) + s.cfg.cpu.marshal_cost(reply.payload.len());
            s.charge_serial(sim.now(), raw)
        };
        sim.stats.sample_duration("server.exec_ms", total);
        sim.stats.incr("server.requests");
        let reply_status = reply.status;
        let reply_version = reply.version;
        let sv2 = sv.clone();
        let prio = req.priority;
        sim.schedule_after(total, move |sim| {
            Server::send_reply(&sv2, sim, client, reply, prio);
        });

        // Cache-invalidation callbacks: tell other importers that a new
        // version committed (paper §2's "server callbacks" option).
        let committed = matches!(req.op, RoverOp::Export { .. })
            && matches!(reply_status, OpStatus::Ok | OpStatus::Resolved);
        if committed && sv.borrow().cfg.callbacks {
            if let Some(urn) = &parsed {
                Server::notify_importers(sv, sim, urn, reply_version, client);
            }
        }
    }

    /// Sends a small callback envelope to every importer of `urn`
    /// except `exclude`. Callbacks are best-effort background traffic:
    /// a disconnected importer simply misses it (and still detects the
    /// change at export time via version comparison).
    fn notify_importers(
        sv: &ServerRef,
        sim: &mut Sim,
        urn: &Urn,
        version: Version,
        exclude: HostId,
    ) {
        let (host, targets) = {
            let s = sv.borrow();
            let targets: Vec<u32> = s
                .importers
                .get(urn)
                .map(|set| set.iter().copied().filter(|c| *c != exclude.0).collect())
                .unwrap_or_default();
            (s.cfg.host, targets)
        };
        if targets.is_empty() {
            return;
        }
        let mut enc = Encoder::new();
        enc.put_str(urn.as_str());
        enc.put_u64(version.0);
        let body = enc.finish();
        for t in targets {
            let env = Envelope {
                kind: MsgKind::Callback,
                src: host,
                dst: HostId(t),
                body: body.clone(),
            };
            Server::send_callback(sv, sim, HostId(t), env);
            sim.stats.incr("server.callbacks_sent");
        }
    }

    fn send_callback(sv: &ServerRef, sim: &mut Sim, client: HostId, env: Envelope) {
        let (net, sched) = {
            let s = sv.borrow();
            (
                s.net.clone(),
                s.routes.get(&client.0).and_then(|r| r.sched.clone()),
            )
        };
        if let Some(sched) = sched {
            HostSched::enqueue_keyed(
                &sched,
                sim,
                &net,
                env,
                rover_wire::Priority::BACKGROUND,
                None,
            );
        }
    }

    /// Pure state transition: executes `req` against the store and
    /// returns the reply plus interpreter steps consumed. `urn` is the
    /// caller's already-parsed `req.urn` (`None` = unparsable).
    fn execute(&mut self, req: &QrpcRequest, urn: Option<&Urn>) -> (QrpcReply, u64) {
        let fail = |status: OpStatus| QrpcReply {
            req_id: req.req_id,
            status,
            version: Version(0),
            payload: Bytes::new(),
        };
        let Some(urn) = urn else {
            return (fail(OpStatus::Rejected), 0);
        };

        match &req.op {
            RoverOp::Ping => (
                QrpcReply {
                    req_id: req.req_id,
                    status: OpStatus::Ok,
                    version: Version(0),
                    payload: Bytes::new(),
                },
                0,
            ),

            RoverOp::Import => match self.store.get(urn) {
                Some(obj) => {
                    self.importers
                        .entry(urn.clone())
                        .or_default()
                        .insert(req.client.0);
                    (
                        QrpcReply {
                            req_id: req.req_id,
                            status: OpStatus::Ok,
                            version: obj.version,
                            payload: obj.to_bytes(),
                        },
                        0,
                    )
                }
                None => (fail(OpStatus::NoSuchObject), 0),
            },

            RoverOp::Invoke { .. } => {
                let payload = match InvokePayload::from_shared(&req.payload) {
                    Ok(p) => p,
                    Err(_) => return (fail(OpStatus::Rejected), 0),
                };
                let Some(obj) = self.store.get(urn) else {
                    return (fail(OpStatus::NoSuchObject), 0);
                };
                // Invocations are read-only: run on a scratch copy.
                let mut scratch = obj.clone();
                let args: Vec<rover_script::Value> =
                    payload.args.iter().map(rover_script::Value::str).collect();
                match scratch.run_method(&payload.method, &args, self.cfg.budget) {
                    Ok(run) => {
                        let mut enc = Encoder::new();
                        enc.put_str(&run.result.as_str());
                        (
                            QrpcReply {
                                req_id: req.req_id,
                                status: OpStatus::Ok,
                                version: obj.version,
                                payload: enc.finish(),
                            },
                            run.steps,
                        )
                    }
                    Err(crate::RoverError::NoSuchMethod(_)) => (fail(OpStatus::NoSuchMethod), 0),
                    Err(_) => (fail(OpStatus::ExecError), 0),
                }
            }

            RoverOp::Export { .. } => {
                let payload = match ExportPayload::from_shared(&req.payload) {
                    Ok(p) => p,
                    Err(_) => return (fail(OpStatus::Rejected), 0),
                };
                let Some(current) = self.store.get(urn) else {
                    return (fail(OpStatus::NoSuchObject), 0);
                };

                let conflict = req.base_version != current.version;
                let (resolution, resolved_status) = if conflict {
                    let resolver: &dyn Resolver = self
                        .resolvers
                        .get(&current.type_name)
                        .map(|b| b.as_ref())
                        .unwrap_or(&RejectResolver);
                    (
                        resolver.resolve(current, req.base_version, &payload),
                        OpStatus::Resolved,
                    )
                } else {
                    (Resolution::Reexecute, OpStatus::Ok)
                };

                match resolution {
                    Resolution::Reject => {
                        // Reflect the conflict with the current state so
                        // the user can reconcile.
                        let obj = self.store.get(urn).expect("checked");
                        (
                            QrpcReply {
                                req_id: req.req_id,
                                status: OpStatus::Conflict,
                                version: obj.version,
                                payload: obj.to_bytes(),
                            },
                            0,
                        )
                    }
                    Resolution::Merged(mut merged) => {
                        let v = Version(self.store.get(urn).expect("checked").version.0 + 1);
                        merged.version = v;
                        let bytes = merged.to_bytes();
                        self.store.insert(urn.clone(), merged);
                        (
                            QrpcReply {
                                req_id: req.req_id,
                                status: OpStatus::Resolved,
                                version: v,
                                payload: bytes,
                            },
                            0,
                        )
                    }
                    Resolution::Reexecute => {
                        let obj = self.store.get_mut(urn).expect("checked");
                        let args: Vec<rover_script::Value> =
                            payload.args.iter().map(rover_script::Value::str).collect();
                        match obj.run_method(&payload.method, &args, self.cfg.budget) {
                            Ok(run) => {
                                obj.version = Version(obj.version.0 + 1);
                                (
                                    QrpcReply {
                                        req_id: req.req_id,
                                        status: resolved_status,
                                        version: obj.version,
                                        payload: obj.to_bytes(),
                                    },
                                    run.steps,
                                )
                            }
                            Err(crate::RoverError::NoSuchMethod(_)) => {
                                (fail(OpStatus::NoSuchMethod), 0)
                            }
                            Err(_) => (fail(OpStatus::ExecError), 0),
                        }
                    }
                }
            }

            RoverOp::Custom(_) => (fail(OpStatus::Rejected), 0),
        }
    }

    fn send_reply(
        sv: &ServerRef,
        sim: &mut Sim,
        client: HostId,
        reply: QrpcReply,
        prio: rover_wire::Priority,
    ) {
        let (net, host, mut sched, mut any_up, smtp) = {
            let s = sv.borrow();
            let route = s.routes.get(&client.0);
            let any_up = route
                .map(|r| r.links.iter().any(|&l| s.net.is_up(l)))
                .unwrap_or(false);
            (
                s.net.clone(),
                s.cfg.host,
                route.and_then(|r| r.sched.clone()),
                any_up,
                route.and_then(|r| r.smtp.clone()),
            )
        };

        // The mobile client may have switched to an interface we were
        // never told about; learn any up link the network layer knows.
        if !any_up {
            let known: Vec<LinkId> = sv
                .borrow()
                .routes
                .get(&client.0)
                .map(|r| r.links.clone())
                .unwrap_or_default();
            if let Some(l) = net
                .links_between(host, client)
                .into_iter()
                .find(|l| !known.contains(l) && net.is_up(*l))
            {
                sv.borrow_mut().add_route(client, l);
                let s = sv.borrow();
                sched = s.routes.get(&client.0).and_then(|r| r.sched.clone());
                any_up = true;
            }
        }

        let env = Envelope::reply(host, client, &reply);

        // Disconnected client with an SMTP route: spool the reply
        // (split-phase QRPC) instead of queueing it at the server.
        if !any_up {
            if let Some(relay) = smtp {
                SmtpRelay::submit(&relay, sim, env);
                sim.stats.incr("server.replies_via_smtp");
                return;
            }
        }

        match sched {
            Some(sched) => {
                // Priority-queued: drains now or whenever a link to the
                // client comes back up.
                HostSched::enqueue_keyed(&sched, sim, &net, env, prio, None);
                sim.stats.incr("server.replies");
            }
            None => {
                // No configured route: best-effort direct send.
                match net.up_link_between(host, client) {
                    Some(l) if net.send(sim, l, env).is_ok() => {
                        sim.stats.incr("server.replies");
                    }
                    _ => {
                        // The client will retransmit and hit the dedup
                        // cache.
                        sim.stats.incr("server.reply_dropped");
                    }
                }
            }
        }
    }
}
