//! The Rover home server.
//!
//! Every object has a home server: the primary copy lives here, commit
//! versions are assigned here, and conflicting exports are detected and
//! reconciled here (paper §2). The server also provides the server-side
//! RDO execution environment, so clients can ship function instead of
//! data (`Invoke`). Requests are executed at-most-once: a dedup cache
//! keyed by (client, request-id) replays the original reply to
//! retransmissions.
//!
//! The failure model covers the *server* machine too: with a write-ahead
//! commit log attached ([`Server::attach_wal`]), every executed request
//! is appended as a framed [`CommitRecord`] and forced to stable storage
//! before its reply leaves the host. [`Server::crash_restart`] drops all
//! volatile state and rebuilds the store, the write-ordering floors, the
//! acknowledgement floors, the executed-id sets, and the dedup cache
//! from the newest checkpoint plus log replay — so retransmissions of
//! pre-crash commits replay their original replies instead of
//! re-executing, and the exactly-once invariants survive a restart.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::rc::Rc;

use rover_log::{FlushPolicy, FlushReceipt, LogError, OpLog, RecordKind, StableStore};
use rover_net::{HostSched, LinkId, Net, SchedRef, SmtpRelay, SmtpRelayRef};
use rover_sim::Sim;
use rover_wire::{
    decode_commit_batch, encode_commit_batch, Bytes, CommitRecord, Encoder, Envelope, HostId,
    MigrateRecord, MsgKind, OpStatus, QrpcReply, QrpcRequest, ReplicaFrame, ReplyBatch, RoverOp,
    Version, Wire,
};

use crate::config::{CommitPolicy, ServerConfig};
use crate::events::ServerEvent;
use crate::hotset::HotSet;
use crate::object::RoverObject;
use crate::payload::{ExportPayload, InvokePayload};
use crate::resolve::{RejectResolver, Resolution, Resolver};
use crate::shard::ShardMap;
use crate::urn::Urn;

/// Shared handle to a server.
pub type ServerRef = Rc<RefCell<Server>>;

type ServerListener = Rc<RefCell<dyn FnMut(&mut Sim, &ServerEvent)>>;

/// Write-ahead-log record kind: one [`CommitRecord`].
const REC_COMMIT: RecordKind = RecordKind::Other(0x10);
/// Write-ahead-log record kind: a full state snapshot (the `ROV1`
/// checkpoint image produced by [`Server::export_store`]).
const REC_CHECKPOINT: RecordKind = RecordKind::Other(0x11);
/// Write-ahead-log record kind: one group-commit batch — several
/// [`CommitRecord`]s framed as a *single* record
/// ([`rover_wire::encode_commit_batch`]), so the frame CRC covers the
/// whole group and a torn tail discards the batch atomically.
const REC_COMMIT_BATCH: RecordKind = RecordKind::Other(0x12);
/// Write-ahead-log record kind: one [`MigrateRecord`] — the rebalancer
/// re-homing an object (tombstone on the source shard's log, install
/// on the target's), so both logs replay to the post-migration store.
const REC_MIGRATE: RecordKind = RecordKind::Other(0x13);

/// Tracker slots per replication unit: the hot tracker holds
/// `4 × replicate_hot` counters (min 8) so the published top-K comes
/// from a set with churn headroom.
fn hot_capacity(k: usize) -> usize {
    (4 * k).max(8)
}

/// Deterministic crash points in the commit path, scripted with
/// [`Server::script_crash`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CrashPoint {
    /// Crash before the commit record is appended: the execution's
    /// effects are lost with the volatile state; after recovery the
    /// client's retransmission executes freshly (a *first* execution —
    /// nothing was ever committed or replied).
    BeforeAppend,
    /// Crash after the commit record is appended but before the reply
    /// is sent. Under per-operation flush the record is already durable:
    /// after recovery the client's retransmission hits the recovered
    /// dedup cache and replays the original reply — never a
    /// re-execution. Under group commit ([`CommitPolicy::Group`]) the
    /// record has only *staged* into the pending batch — a crash between
    /// execute and the group flush — so nothing is durable, no reply
    /// ever left, and the retransmission executes freshly.
    AfterAppend,
}

/// The attached write-ahead commit log.
struct Wal {
    /// Framed, checksummed device; flushed manually so each commit's
    /// [`FlushReceipt`] can be charged to the virtual clock.
    log: OpLog<Box<dyn StableStore>>,
    /// Commit records appended since the last checkpoint.
    commits_since_ckpt: usize,
}

/// One executed-but-not-yet-durable commit staged in the pending
/// group-commit batch ([`CommitPolicy::Group`]). Its reply (cached in
/// `rec.reply`) may not leave the host before the group flush
/// completes.
struct PendingCommit {
    /// The durable record this commit contributes to the batch; the
    /// object image is captured at stage time, so later staged commits
    /// to the same object never alias.
    rec: CommitRecord,
    /// Reply priority (the request's).
    prio: rover_wire::Priority,
    /// Deferred cache-invalidation fan-out ([`ServerConfig::callbacks`]);
    /// importers are notified only once the commit is durable.
    notify: Option<(Urn, Version)>,
    /// When the commit staged (start of its `server.flush_wait_ms`).
    staged_at: rover_sim::SimTime,
    /// When this commit's execute + reply-marshal CPU work completes;
    /// the reply leaves at the *later* of this and the flush.
    cpu_done: rover_sim::SimTime,
}

/// How replies reach one client.
struct ReplyRoute {
    /// Candidate links, best first.
    links: Vec<LinkId>,
    /// SMTP relay fallback: used when every link is down, so the reply
    /// is spooled instead of waiting (split-phase QRPC).
    smtp: Option<SmtpRelayRef>,
    /// Per-client outbound scheduler: replies carry their request's
    /// priority, so a foreground import's reply overtakes queued bulk
    /// prefetch replies (the server end of the paper's network
    /// scheduler).
    sched: Option<SchedRef>,
}

/// A Rover home server.
pub struct Server {
    cfg: ServerConfig,
    net: Net,
    routes: HashMap<u32, ReplyRoute>,
    store: HashMap<Urn, RoverObject>,
    resolvers: HashMap<String, Box<dyn Resolver>>,
    /// At-most-once replay cache, FIFO-bounded.
    dedup: HashMap<(u32, u64), QrpcReply>,
    dedup_order: VecDeque<(u32, u64)>,
    /// Per-client acknowledgement floor, piggybacked on requests
    /// (`QrpcRequest::acked_below`): every request id strictly below it
    /// had its reply processed at the client, so its dedup entry can
    /// never be needed again and is safe to evict.
    ack_floor: HashMap<u32, u64>,
    /// Request ids this server has executed, per client, pruned below
    /// the acknowledgement floor. Detects the unsafe case where a
    /// request re-executes because its dedup entry was evicted early.
    executed: HashMap<u32, std::collections::BTreeSet<u64>>,
    /// Per (client, session): next admissible ordered-write sequence.
    expected_seq: HashMap<(u32, u64), u64>,
    /// Ordered writes held for a predecessor.
    held: HashMap<(u32, u64), BTreeMap<u64, QrpcRequest>>,
    /// Cross-shard writes-follow-reads holds: requests whose carried
    /// session read-vector names a committed version this shard has not
    /// reached yet, keyed by the object they wait on. Drained when that
    /// object's version advances; volatile (cleared by recovery — the
    /// owning clients retransmit).
    wfr_held: HashMap<Urn, Vec<QrpcRequest>>,
    /// Single-CPU serialization horizon for execution costs.
    cpu_free_at: rover_sim::SimTime,
    /// Disk serialization horizon for group flushes: the commit path is
    /// pipelined, so the CPU executes the next requests while the disk
    /// syncs the previous batch.
    disk_free_at: rover_sim::SimTime,
    /// Executed commits staged for the next group flush
    /// ([`CommitPolicy::Group`]); empty under per-operation flush.
    pending: Vec<PendingCommit>,
    /// True while a window timer for the current pending batch is
    /// outstanding.
    group_timer_armed: bool,
    /// Window-timer generation: a timer only fires for the batch that
    /// armed it (a size-cap flush plus a fresh batch would otherwise
    /// be cut short by the stale timer).
    group_timer_gen: u64,
    /// Bumped on every crash/recovery; in-flight flush-dispatch and
    /// window-timer events captured under an older incarnation no-op.
    incarnation: u64,
    /// Clients holding an imported copy of each object (callback set).
    importers: HashMap<Urn, std::collections::HashSet<u32>>,
    /// Volatile read replicas of hot objects homed on *other* shards,
    /// each paired with the publication epoch its frame carried.
    /// Replicas die with a crash (never recovered) and age out when
    /// their home stops refreshing them.
    replicas: HashMap<Urn, (RoverObject, u64)>,
    /// Approximate top-K tracker over this shard's import/export
    /// traffic; `Some` only when replication is on
    /// (`cfg.replicate_hot > 0` and shard routing attached).
    hotset: Option<HotSet>,
    /// Federation routing: a clone of the shared [`ShardMap`] (its
    /// dynamic plane is shared across clones) plus this server's shard
    /// index. `None` outside a federation — every hot-set/replica/
    /// migration path below is then inert.
    shard_routing: Option<(ShardMap, usize)>,
    /// Replication epochs this server has run.
    repl_epoch: u64,
    /// Imports served from a peer replica (lifetime).
    replica_reads_n: u64,
    /// Requests whose RDO method code failed to parse (lifetime;
    /// hostile or corrupt script text, distinct from scripts that ran
    /// and failed).
    parse_rejected_n: u64,
    /// Successful export commits executed here (lifetime; the load
    /// sampler reads this even without a dynamic routing plane).
    commits_n: u64,
    /// Accepted authentication tokens; `None` disables authentication.
    accepted_tokens: Option<std::collections::HashSet<u64>>,
    /// Write-ahead commit log; `None` runs the server volatile (the
    /// pre-durability behaviour).
    wal: Option<Wal>,
    /// True between a crash and the completion of recovery: the host is
    /// down and every arriving envelope is dropped.
    crashed: bool,
    /// Scripted crash: fires at the Nth WAL-bound commit (1-based,
    /// monotone across restarts) at the given point.
    crash_at: Option<(u64, CrashPoint)>,
    /// WAL-bound commits processed across the server's lifetime (keeps
    /// counting through restarts; the scripted-crash ordinal).
    commit_ordinal: u64,
    /// Durability-plane event listeners.
    listeners: Vec<ServerListener>,
}

impl Server {
    /// Creates a server and registers its request handler on the
    /// network.
    pub fn new(net: &Net, cfg: ServerConfig) -> ServerRef {
        let server = Rc::new(RefCell::new(Server {
            cfg,
            net: net.clone(),
            routes: HashMap::new(),
            store: HashMap::new(),
            resolvers: HashMap::new(),
            dedup: HashMap::new(),
            dedup_order: VecDeque::new(),
            ack_floor: HashMap::new(),
            executed: HashMap::new(),
            expected_seq: HashMap::new(),
            held: HashMap::new(),
            wfr_held: HashMap::new(),
            cpu_free_at: rover_sim::SimTime::ZERO,
            disk_free_at: rover_sim::SimTime::ZERO,
            pending: Vec::new(),
            group_timer_armed: false,
            group_timer_gen: 0,
            incarnation: 0,
            importers: HashMap::new(),
            replicas: HashMap::new(),
            hotset: None,
            shard_routing: None,
            repl_epoch: 0,
            replica_reads_n: 0,
            parse_rejected_n: 0,
            commits_n: 0,
            accepted_tokens: None,
            wal: None,
            crashed: false,
            crash_at: None,
            commit_ordinal: 0,
            listeners: Vec::new(),
        }));
        let weak = Rc::downgrade(&server);
        let host = server.borrow().cfg.host;
        net.register_host(
            host,
            rover_net::wrap_reassembly(move |sim: &mut Sim, _net: &Net, env: Envelope| {
                let Some(sv) = weak.upgrade() else { return };
                match env.kind {
                    MsgKind::Request => Server::on_request(&sv, sim, env),
                    MsgKind::Replica => Server::on_replica(&sv, sim, env),
                    _ => {}
                }
            }),
        );
        server
    }

    /// Installs (or replaces) an object; assigns version 1 if the object
    /// was never committed. Returns the stored version.
    pub fn put_object(&mut self, mut obj: RoverObject) -> Version {
        if obj.version == Version(0) {
            obj.version = Version(1);
        }
        let v = obj.version;
        self.store.insert(obj.urn.clone(), obj);
        v
    }

    /// Returns the stored object, if any.
    pub fn get_object(&self, urn: &Urn) -> Option<&RoverObject> {
        self.store.get(urn)
    }

    /// Number of stored objects.
    pub fn object_count(&self) -> usize {
        self.store.len()
    }

    /// Declares a link used to reach `client`; call once per candidate
    /// interface, best quality first.
    pub fn add_route(&mut self, client: HostId, link: LinkId) {
        let host = self.cfg.host;
        let net = self.net.clone();
        let route = self.routes.entry(client.0).or_insert_with(|| ReplyRoute {
            links: Vec::new(),
            smtp: None,
            sched: None,
        });
        route.links.push(link);
        let mode = self.cfg.sched_mode;
        let mtu = self.cfg.mtu;
        let sched = route.sched.get_or_insert_with(|| {
            let s = HostSched::new(host, mode);
            HostSched::set_mtu(&s, mtu);
            s
        });
        HostSched::attach_link(sched, &net, link);
    }

    /// Declares an SMTP fallback for replies to `client`.
    pub fn add_smtp_route(&mut self, client: HostId, relay: SmtpRelayRef) {
        self.routes
            .entry(client.0)
            .or_insert_with(|| ReplyRoute {
                links: Vec::new(),
                smtp: None,
                sched: None,
            })
            .smtp = Some(relay);
    }

    /// Registers the conflict resolver for an object type. Types without
    /// a registered resolver reject all conflicts.
    pub fn register_resolver(&mut self, type_name: &str, resolver: Box<dyn Resolver>) {
        self.resolvers.insert(type_name.to_owned(), resolver);
    }

    /// Requires every request to present one of `tokens` (the paper's
    /// server "authenticates requests from client applications").
    /// Unauthenticated requests are answered with `Rejected`.
    pub fn require_auth(&mut self, tokens: &[u64]) {
        self.accepted_tokens = Some(tokens.iter().copied().collect());
    }

    // --- hot-set replication & rebalancing ------------------------------

    /// Joins this server to a shard federation: `map` is a clone of the
    /// shared routing table (its dynamic plane, when attached, is
    /// shared across clones) and `shard` this server's index in it.
    /// When [`ServerConfig::replicate_hot`] is non-zero this also arms
    /// the hot-set tracker; with it zero the server merely learns its
    /// place in the map (needed to answer `WrongShard` for migrated
    /// objects) and the replication plane stays fully inert.
    pub fn attach_shard_routing(&mut self, map: ShardMap, shard: usize) {
        if self.cfg.replicate_hot > 0 {
            self.hotset = Some(HotSet::new(hot_capacity(self.cfg.replicate_hot)));
        }
        self.shard_routing = Some((map, shard));
    }

    /// Whether the routing table homes `urn` on a different shard — the
    /// object either hashes elsewhere or was migrated away from here.
    fn homed_elsewhere(&self, urn: &str) -> bool {
        self.shard_routing
            .as_ref()
            .is_some_and(|(map, idx)| map.shard_for(urn) != *idx)
    }

    /// Successful export commits executed by this server.
    pub fn commit_count(&self) -> u64 {
        self.commits_n
    }

    /// Imports served from a peer replica instead of the home store.
    pub fn replica_reads(&self) -> u64 {
        self.replica_reads_n
    }

    /// Peer replicas currently installed here.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// The hot tracker's current view restricted to objects actually
    /// homed (and stored) here, hottest first — the rebalancer's
    /// migration candidates.
    pub fn hot_home_top(&self) -> Vec<(String, u64)> {
        let Some(h) = &self.hotset else {
            return Vec::new();
        };
        h.top()
            .into_iter()
            .filter(|(name, _)| {
                !self.homed_elsewhere(name)
                    && Urn::parse(name)
                        .ok()
                        .is_some_and(|u| self.store.contains_key(&u))
            })
            .collect()
    }

    /// Requests queued at this server right now: staged group commits
    /// plus ordered-write and writes-follow-reads holds.
    pub fn queue_depth(&self) -> usize {
        self.pending.len()
            + self.held.values().map(|m| m.len()).sum::<usize>()
            + self.wfr_held.values().map(Vec::len).sum::<usize>()
    }

    /// Handles an incoming [`ReplicaFrame`] from a federation peer:
    /// installs the image as a volatile read replica (never shadowing
    /// an object homed here) and registers it in the shared directory.
    fn on_replica(sv: &ServerRef, sim: &mut Sim, env: Envelope) {
        if sv.borrow().crashed {
            sim.stats.incr("server.dropped_while_crashed");
            return;
        }
        let Ok(frame) = ReplicaFrame::from_shared(&env.body) else {
            sim.stats.incr("server.bad_request");
            sim.stats.incr("wire.decode_rejected.replica");
            return;
        };
        let (Ok(urn), Ok(obj)) = (Urn::parse(&frame.urn), RoverObject::from_shared(&frame.obj))
        else {
            sim.stats.incr("server.bad_request");
            sim.stats.incr("wire.decode_rejected.replica");
            return;
        };
        let mut s = sv.borrow_mut();
        // The home (or migration target) serves from its store; a
        // replica of an object homed here would only shadow it.
        if !s.homed_elsewhere(&frame.urn) || s.store.contains_key(&urn) {
            return;
        }
        let newer = s
            .replicas
            .get(&urn)
            .is_none_or(|(old, _)| obj.version >= old.version);
        if !newer {
            return;
        }
        s.replicas.insert(urn, (obj, frame.epoch));
        if let Some((map, idx)) = &s.shard_routing {
            map.publish_replica(&frame.urn, *idx, frame.version.0);
        }
        sim.stats.incr("server.replicas_installed");
    }

    /// One replication epoch: ages out peer replicas whose home stopped
    /// refreshing them (bounding staleness to one epoch), folds the hot
    /// tracker's activity into the stats, decays it, and publishes this
    /// shard's K hottest home objects to every federation peer as
    /// version-stamped volatile replicas. A no-op when replication is
    /// off or the host is down.
    pub fn replication_epoch(sv: &ServerRef, sim: &mut Sim) {
        let (frames, peers, host) = {
            let mut guard = sv.borrow_mut();
            let s = &mut *guard;
            if s.crashed || s.cfg.replicate_hot == 0 {
                return;
            }
            let Some((map, idx)) = s.shard_routing.clone() else {
                return;
            };
            s.repl_epoch += 1;
            let epoch = s.repl_epoch;
            let min_epoch = epoch.saturating_sub(1);
            let stale: Vec<Urn> = s
                .replicas
                .iter()
                .filter(|(_, (_, e))| *e < min_epoch)
                .map(|(u, _)| u.clone())
                .collect();
            for u in stale {
                s.replicas.remove(&u);
                map.retract_replica(u.as_str(), idx);
                sim.stats.incr("server.replicas_aged_out");
            }
            let mut frames = Vec::new();
            if let Some(h) = &mut s.hotset {
                let (touched, evicted) = h.take_activity();
                sim.stats.add("server.hot_tracked", touched);
                sim.stats.add("server.hot_evicted", evicted);
                let top = h.top();
                h.decay();
                for (name, _) in top {
                    if frames.len() >= s.cfg.replicate_hot {
                        break;
                    }
                    // Publish only objects homed (and present) here.
                    if map.shard_for(&name) != idx {
                        continue;
                    }
                    let Some(obj) = Urn::parse(&name).ok().and_then(|u| s.store.get(&u)) else {
                        continue;
                    };
                    frames.push(ReplicaFrame {
                        urn: name,
                        version: obj.version,
                        epoch,
                        obj: obj.to_bytes(),
                    });
                }
            }
            let peers: Vec<HostId> = map
                .hosts()
                .iter()
                .copied()
                .filter(|h| *h != s.cfg.host)
                .collect();
            (frames, peers, s.cfg.host)
        };
        for f in &frames {
            let body = f.to_bytes();
            for &p in &peers {
                let env = Envelope {
                    kind: MsgKind::Replica,
                    src: host,
                    dst: p,
                    body: body.clone(),
                };
                Server::send_callback(sv, sim, p, env);
                sim.stats.incr("server.replicas_published");
            }
        }
    }

    /// Appends and syncs one migration record; `None` receipt means no
    /// WAL is attached (volatile server — the move is volatile too).
    fn wal_append_migrate(
        &mut self,
        urn: &str,
        obj: Option<Bytes>,
    ) -> Result<Option<FlushReceipt>, LogError> {
        let Some(wal) = self.wal.as_mut() else {
            return Ok(None);
        };
        let rec = MigrateRecord {
            urn: urn.to_string(),
            obj,
        };
        wal.log.append(REC_MIGRATE, rec.to_bytes())?;
        let receipt = wal.log.flush()?;
        wal.commits_since_ckpt += 1;
        Ok(Some(receipt))
    }

    /// The source side of a rebalancing move: flushes any staged group
    /// (WAL order — every commit made here precedes the departure),
    /// removes `urn` from the store, appends a durable migration
    /// tombstone, and returns the object image for
    /// [`Server::install_migrated`] on the target. Writes-follow-reads
    /// holds keyed on the object re-enter admission: with the object
    /// homed elsewhere its floors are no longer this shard's to
    /// enforce, and ordered exports now answer `WrongShard` so their
    /// clients re-route. Returns `None` when the host is down or the
    /// object is not stored here.
    pub fn migrate_out(sv: &ServerRef, sim: &mut Sim, urn: &Urn) -> Option<RoverObject> {
        if sv.borrow().crashed {
            return None;
        }
        if !sv.borrow().pending.is_empty() {
            Server::group_flush(sv, sim);
            if sv.borrow().crashed {
                return None;
            }
        }
        let (obj, res) = {
            let mut s = sv.borrow_mut();
            let obj = s.store.remove(urn)?;
            let res = s.wal_append_migrate(urn.as_str(), None);
            (obj, res)
        };
        match res {
            Ok(receipt) => {
                if let Some(receipt) = receipt {
                    let mut s = sv.borrow_mut();
                    let cost = s.cfg.storage.flush_cost(receipt);
                    s.charge_serial(sim.now(), cost);
                }
            }
            Err(e) => {
                sim.stats.incr("server.wal_append_failed");
                sim.trace(
                    "server",
                    format!("migrate-out append failed: {e}; crashing"),
                );
                Server::crash(sv, sim);
                return None;
            }
        }
        sim.stats.incr("server.migrated_out");
        // Free every hold waiting on the departed object; re-admission
        // answers them under the post-migration routing.
        let freed = sv.borrow_mut().wfr_held.remove(urn).unwrap_or_default();
        for r in freed {
            sim.stats.incr("server.wfr_drained");
            Server::admit(sv, sim, r);
        }
        Some(obj)
    }

    /// The target side of a rebalancing move: installs the migrated
    /// object into the store (displacing any replica of it held here),
    /// appends the durable install record, and drains holds the
    /// arrival satisfies. Returns `false` when the host is down (the
    /// caller must retry or abort the move — the source has already
    /// logged the tombstone).
    pub fn install_migrated(sv: &ServerRef, sim: &mut Sim, obj: RoverObject) -> bool {
        if sv.borrow().crashed {
            return false;
        }
        let urn = obj.urn.clone();
        let res = {
            let mut s = sv.borrow_mut();
            s.replicas.remove(&urn);
            if let Some((map, idx)) = &s.shard_routing {
                map.retract_replica(urn.as_str(), *idx);
            }
            let bytes = obj.to_bytes();
            s.store.insert(urn.clone(), obj);
            s.wal_append_migrate(urn.as_str(), Some(bytes))
        };
        match res {
            Ok(receipt) => {
                if let Some(receipt) = receipt {
                    let mut s = sv.borrow_mut();
                    let cost = s.cfg.storage.flush_cost(receipt);
                    s.charge_serial(sim.now(), cost);
                }
            }
            Err(e) => {
                sim.stats.incr("server.wal_append_failed");
                sim.trace("server", format!("migrate-in append failed: {e}; crashing"));
                Server::crash(sv, sim);
                return false;
            }
        }
        sim.stats.incr("server.migrated_in");
        Server::drain_wfr(sv, sim, Some(&urn));
        true
    }

    /// Serializes the server's durable state (for checkpointing /
    /// restart): the `ROV1` sections (object store plus per-session
    /// write-ordering floors — ordering state must survive a restart or
    /// ordered exports issued after it would wait forever for
    /// predecessors the old incarnation already admitted), followed by a
    /// `ROV2` extension carrying the at-most-once state: per-client
    /// acknowledgement floors, executed-id sets, and the dedup replay
    /// cache in eviction (FIFO) order. Dedup entries already below their
    /// client's floor are pruned from the snapshot (floor-driven): the
    /// protocol answers below-floor arrivals from committed state, so
    /// those replies can never be needed again.
    ///
    /// The held out-of-order write buffer is deliberately *not*
    /// serialized: held requests were never executed or replied to, so
    /// dropping them is safe — the owning clients retransmit and the
    /// ordering gate re-admits them (counted as
    /// `server.held_dropped_on_recovery` by [`Server::crash_restart`]).
    pub fn export_store(&self) -> Vec<u8> {
        crate::checkpoint::encode_checkpoint(&self.checkpoint_image())
    }

    /// Snapshots the durable state into a [`CheckpointImage`] in
    /// canonical order (see [`Server::export_store`] for what is and is
    /// not included).
    fn checkpoint_image(&self) -> crate::checkpoint::CheckpointImage {
        let mut objects: Vec<RoverObject> = self.store.values().cloned().collect();
        objects.sort_by(|a, b| a.urn.cmp(&b.urn));
        let mut expected_seq: Vec<((u32, u64), u64)> =
            self.expected_seq.iter().map(|(k, v)| (*k, *v)).collect();
        expected_seq.sort();
        let mut ack_floors: Vec<(u32, u64)> =
            self.ack_floor.iter().map(|(c, f)| (*c, *f)).collect();
        ack_floors.sort();
        let mut executed: Vec<(u32, Vec<u64>)> = self
            .executed
            .iter()
            .map(|(c, ids)| (*c, ids.iter().copied().collect()))
            .collect();
        executed.sort_by_key(|(c, _)| *c);
        // Dedup entries already below their client's floor are pruned
        // (the protocol answers below-floor arrivals from committed
        // state); an order entry without a cache entry is skipped
        // rather than trusted to exist.
        let dedup: Vec<((u32, u64), QrpcReply)> = self
            .dedup_order
            .iter()
            .filter(|(c, id)| *id >= self.ack_floor.get(c).copied().unwrap_or(0))
            .filter_map(|key| self.dedup.get(key).map(|r| (*key, r.clone())))
            .collect();
        crate::checkpoint::CheckpointImage {
            objects,
            expected_seq,
            ack_floors,
            executed,
            dedup,
        }
    }

    /// Restores state written by [`Server::export_store`], *replacing*
    /// the server's state wholesale: the store, ordering floors, and all
    /// derived at-most-once state (dedup cache, acknowledgement floors,
    /// executed-id sets, held writes, callback sets) are cleared before
    /// the snapshot is installed, so importing into a warm server cannot
    /// leave stale entries behind. Object versions are preserved, so
    /// clients holding cached copies remain consistent across the
    /// restart. Snapshots that predate the `ROV2` extension restore with
    /// an empty dedup cache (retransmissions of already-committed
    /// exports then surface as conflicts and go through resolution).
    pub fn import_store(&mut self, bytes: &[u8]) -> Result<usize, crate::RoverError> {
        // Parse everything before touching any state, so a truncated
        // snapshot cannot leave the server half-replaced.
        let img = crate::checkpoint::decode_checkpoint(bytes)?;
        self.clear_state();
        let loaded = img.objects.len();
        for obj in img.objects {
            self.store.insert(obj.urn.clone(), obj);
        }
        self.expected_seq.extend(img.expected_seq);
        self.ack_floor.extend(img.ack_floors);
        for (client, ids) in img.executed {
            self.executed.insert(client, ids.into_iter().collect());
        }
        for (key, reply) in img.dedup {
            if self.dedup.insert(key, reply).is_none() {
                self.dedup_order.push_back(key);
            }
        }
        Ok(loaded)
    }

    /// Drops every piece of volatile server state: the store, ordering
    /// floors, and all derived at-most-once bookkeeping.
    fn clear_state(&mut self) {
        self.store.clear();
        self.expected_seq.clear();
        self.dedup.clear();
        self.dedup_order.clear();
        self.ack_floor.clear();
        self.executed.clear();
        self.held.clear();
        self.wfr_held.clear();
        self.importers.clear();
        // Replicas are volatile by contract: gone locally, and the
        // shared directory forgets this holder so no client routes a
        // read here until the next epoch republishes.
        self.replicas.clear();
        if let Some((map, idx)) = &self.shard_routing {
            map.drop_replicas_of(*idx);
        }
        if self.hotset.is_some() {
            self.hotset = Some(HotSet::new(hot_capacity(self.cfg.replicate_hot)));
        }
    }

    // --- write-ahead commit log -----------------------------------------

    /// Registers a durability-plane event listener
    /// ([`ServerEvent`]: crash, recovery, checkpoint).
    pub fn on_event<F>(sv: &ServerRef, f: F)
    where
        F: FnMut(&mut Sim, &ServerEvent) + 'static,
    {
        sv.borrow_mut().listeners.push(Rc::new(RefCell::new(f)));
    }

    fn emit(sv: &ServerRef, sim: &mut Sim, ev: ServerEvent) {
        let listeners = sv.borrow().listeners.clone();
        for l in listeners {
            (l.borrow_mut())(sim, &ev);
        }
    }

    /// Attaches a write-ahead commit log on `store`. From here on, every
    /// executed request is durable (commit record appended and synced)
    /// before its reply leaves the host, and checkpoints compact the log
    /// every [`ServerConfig::checkpoint_every`] commits.
    ///
    /// A fresh (empty) device is initialized with a checkpoint of the
    /// server's current state, so objects installed with
    /// [`Server::put_object`] before the attach survive a crash. A
    /// non-empty device is a *restart*: the server's state is replaced
    /// by checkpoint + log replay, exactly as [`Server::crash_restart`]
    /// would.
    pub fn attach_wal(
        sv: &ServerRef,
        sim: &mut Sim,
        store: Box<dyn StableStore>,
    ) -> Result<(), crate::RoverError> {
        if sv.borrow().wal.is_some() {
            return Err(crate::RoverError::Log("wal already attached".into()));
        }
        let log =
            OpLog::open_with(store, FlushPolicy::Manual, false).map_err(crate::RoverError::from)?;
        if log.is_empty() && log.tail_skipped_bytes() == 0 {
            sv.borrow_mut().wal = Some(Wal {
                log,
                commits_since_ckpt: 0,
            });
            Server::write_checkpoint(sv, sim).map_err(crate::RoverError::from)?;
            Ok(())
        } else {
            Server::recover_from_log(sv, sim, log, 0)
        }
    }

    /// Creates a server whose state is recovered from `store` (a device
    /// previously written by a WAL-attached server) and keeps the log
    /// attached. Equivalent to [`Server::new`] + [`Server::attach_wal`].
    pub fn recover(
        net: &Net,
        cfg: ServerConfig,
        sim: &mut Sim,
        store: Box<dyn StableStore>,
    ) -> Result<ServerRef, crate::RoverError> {
        let sv = Server::new(net, cfg);
        Server::attach_wal(&sv, sim, store)?;
        Ok(sv)
    }

    /// True once a write-ahead log is attached.
    pub fn wal_attached(&self) -> bool {
        self.wal.is_some()
    }

    /// Durable size of the write-ahead device in bytes (0 without one).
    pub fn wal_device_len(&self) -> u64 {
        self.wal.as_ref().map(|w| w.log.device_len()).unwrap_or(0)
    }

    /// True while the server is "down" (between a crash and recovery);
    /// arriving envelopes are dropped.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Whether this server has executed request `req` of `client` — the
    /// at-most-once witness the soak harness checks across restarts.
    /// Ids below the client's acknowledgement floor were pruned from the
    /// explicit set precisely because the client confirmed receiving
    /// their replies, so the floor itself vouches for them.
    pub fn executed_contains(&self, client: HostId, req: rover_wire::RequestId) -> bool {
        if req.0 < self.ack_floor.get(&client.0).copied().unwrap_or(0) {
            return true;
        }
        self.executed
            .get(&client.0)
            .is_some_and(|ex| ex.contains(&req.0))
    }

    /// Arms a deterministic crash: the server crashes at the `nth`
    /// WAL-bound commit (1-based, counted across the server's lifetime
    /// including past restarts) at the given [`CrashPoint`]. The host
    /// stays down — dropping all traffic — until
    /// [`Server::crash_restart`] recovers it.
    pub fn script_crash(&mut self, nth: u64, point: CrashPoint) {
        self.crash_at = Some((nth, point));
    }

    /// Cuts power to the server immediately — the soak harness's
    /// scheduled mid-traffic failure. Volatile state is dead; every
    /// envelope is dropped until [`Server::crash_restart`] brings the
    /// host back from the write-ahead device.
    pub fn crash_now(sv: &ServerRef, sim: &mut Sim) {
        Server::crash(sv, sim);
    }

    /// Marks the server crashed: volatile state is dead (recovery wipes
    /// it), and every envelope is dropped until recovery.
    fn crash(sv: &ServerRef, sim: &mut Sim) {
        let staged_lost = {
            let mut s = sv.borrow_mut();
            s.crashed = true;
            s.crash_at = None;
            // Staged-but-unflushed commits die with the volatile state:
            // no reply ever left for them, so their clients retransmit
            // and re-execute freshly after recovery.
            let staged_lost = s.pending.len() as u64;
            s.pending.clear();
            s.group_timer_armed = false;
            s.incarnation += 1;
            // Replicas die with the volatile state, and the shared
            // directory must stop routing reads at a dead holder.
            s.replicas.clear();
            if let Some((map, idx)) = &s.shard_routing {
                map.drop_replicas_of(*idx);
            }
            staged_lost
        };
        if staged_lost > 0 {
            sim.stats.add("server.staged_lost_on_crash", staged_lost);
        }
        sim.stats.incr("server.crashes");
        sim.trace(
            "server",
            "crashed; dropping traffic until recovery".to_owned(),
        );
        let durable = sim.stats.counter("server.wal_appends");
        Server::emit(
            sv,
            sim,
            ServerEvent::Crashed {
                durable_commits: durable,
            },
        );
    }

    /// Should the scripted crash fire at `point` for commit `ordinal`?
    fn crash_due(&self, ordinal: u64, point: CrashPoint) -> bool {
        self.wal.is_some() && self.crash_at == Some((ordinal, point))
    }

    /// Simulates a machine failure and reboot: all volatile state is
    /// dropped (unsynced device bytes included), and the server is
    /// rebuilt from the write-ahead device — newest checkpoint first,
    /// then replay of every complete commit record after it. Held
    /// out-of-order writes are lost by design and counted
    /// (`server.held_dropped_on_recovery`); their clients retransmit.
    ///
    /// Requires an attached WAL ([`Server::attach_wal`]).
    pub fn crash_restart(sv: &ServerRef, sim: &mut Sim) -> Result<(), crate::RoverError> {
        let (store, held_dropped, wfr_dropped) = {
            let mut s = sv.borrow_mut();
            let Some(wal) = s.wal.take() else {
                return Err(crate::RoverError::Log(
                    "crash_restart requires an attached wal".into(),
                ));
            };
            let held_dropped: u64 = s.held.values().map(|m| m.len() as u64).sum();
            let wfr_dropped: u64 = s.wfr_held.values().map(|v| v.len() as u64).sum();
            let mut store = wal.log.into_store();
            store.drop_staged();
            s.clear_state();
            s.crashed = true;
            (store, held_dropped, wfr_dropped)
        };
        if held_dropped > 0 {
            sim.stats
                .add("server.held_dropped_on_recovery", held_dropped);
        }
        if wfr_dropped > 0 {
            sim.stats.add("server.wfr_dropped_on_recovery", wfr_dropped);
        }
        let log =
            OpLog::open_with(store, FlushPolicy::Manual, false).map_err(crate::RoverError::from)?;
        Server::recover_from_log(sv, sim, log, held_dropped)
    }

    /// Rebuilds server state from an opened write-ahead log: newest
    /// checkpoint snapshot, then replay of commit records after it.
    /// Installs the log, clears the crashed flag, charges the recovery
    /// scan to the virtual clock, and emits [`ServerEvent::Recovered`].
    fn recover_from_log(
        sv: &ServerRef,
        sim: &mut Sim,
        log: OpLog<Box<dyn StableStore>>,
        held_dropped: u64,
    ) -> Result<(), crate::RoverError> {
        let scan = log.scan_report();
        let truncated = scan.tail_skipped_bytes;
        let device_bytes = log.device_len();
        let (recovered, cost) = {
            let mut s = sv.borrow_mut();
            s.clear_state();
            let mut ckpt: Option<(u64, Bytes)> = None;
            for r in log.records() {
                if r.kind == REC_CHECKPOINT {
                    ckpt = Some((r.seq, r.payload.clone()));
                }
            }
            let ckpt_seq = match &ckpt {
                Some((seq, snap)) => {
                    s.import_store(snap)?;
                    *seq
                }
                None => 0,
            };
            let mut recovered = 0u64;
            for r in log.records() {
                if r.seq <= ckpt_seq {
                    continue;
                }
                if r.kind == REC_COMMIT {
                    let c =
                        CommitRecord::from_shared(&r.payload).map_err(crate::RoverError::from)?;
                    s.apply_commit(c)?;
                    recovered += 1;
                } else if r.kind == REC_COMMIT_BATCH {
                    // One frame, many commits: the frame CRC already
                    // vouched for the whole group (a torn batch never
                    // parses as a record at all).
                    for c in decode_commit_batch(&r.payload).map_err(crate::RoverError::from)? {
                        s.apply_commit(c)?;
                        recovered += 1;
                    }
                } else if r.kind == REC_MIGRATE {
                    // Rebalancer move: tombstone (the object left this
                    // shard) or install (it arrived), replayed in log
                    // order against commits to the same object.
                    let m =
                        MigrateRecord::from_shared(&r.payload).map_err(crate::RoverError::from)?;
                    match m.obj {
                        Some(bytes) => {
                            let obj = RoverObject::from_shared(&bytes)
                                .map_err(crate::RoverError::from)?;
                            s.store.insert(obj.urn.clone(), obj);
                        }
                        None => {
                            if let Ok(u) = Urn::parse(&m.urn) {
                                s.store.remove(&u);
                            }
                        }
                    }
                }
            }
            // Re-prune executed ids below the recovered floors, exactly
            // as the admission path would have.
            let floors = s.ack_floor.clone();
            for (client, floor) in floors {
                if let Some(ex) = s.executed.get_mut(&client) {
                    *ex = ex.split_off(&floor);
                }
            }
            s.wal = Some(Wal {
                log,
                commits_since_ckpt: recovered as usize,
            });
            s.crashed = false;
            // The reboot's recovery scan reads the whole device; charge
            // it like any other serial work, starting from fresh CPU and
            // disk horizons (the old ones died with the machine). Any
            // staged batch or armed window timer is stale too.
            s.cpu_free_at = sim.now();
            s.disk_free_at = sim.now();
            s.pending.clear();
            s.group_timer_armed = false;
            s.incarnation += 1;
            let scan = s.cfg.cpu.marshal_cost(device_bytes as usize);
            let cost = s.charge_serial(sim.now(), scan);
            (recovered, cost)
        };
        sim.stats.add("server.recovered_commits", recovered);
        sim.stats.add("server.recovery_truncated_tail", truncated);
        if let Some(issue) = scan.issue {
            // Typed scan-rejection taxonomy: which invariant the torn
            // tail tripped (truncated_header / bad_magic / torn_payload
            // / checksum_mismatch / decompress_failed).
            sim.stats
                .incr(&format!("log.scan_rejected.{}", issue.reason()));
        }
        sim.stats.sample_duration("server.recovery_ms", cost);
        sim.trace(
            "server",
            format!(
                "recovered: {recovered} commit(s) replayed, {truncated} torn byte(s) discarded"
            ),
        );
        Server::emit(
            sv,
            sim,
            ServerEvent::Recovered {
                commits: recovered,
                truncated_tail: truncated,
                held_dropped,
            },
        );
        Ok(())
    }

    /// Installs one replayed commit record's effects.
    fn apply_commit(&mut self, c: CommitRecord) -> Result<(), crate::RoverError> {
        let floor = self.ack_floor.entry(c.client.0).or_insert(0);
        if c.acked_below > *floor {
            *floor = c.acked_below;
        }
        self.executed
            .entry(c.client.0)
            .or_default()
            .insert(c.req_id.0);
        let key = (c.client.0, c.req_id.0);
        if self.dedup.insert(key, c.reply).is_none() {
            self.dedup_order.push_back(key);
        }
        if c.session_seq > 0 {
            let e = self
                .expected_seq
                .entry((c.client.0, c.session.0))
                .or_insert(1);
            *e = (*e).max(c.session_seq + 1);
        }
        if let Some(bytes) = c.obj {
            let obj = RoverObject::from_shared(&bytes).map_err(crate::RoverError::from)?;
            self.store.insert(obj.urn.clone(), obj);
        }
        Ok(())
    }

    /// Builds the durable record for an executed request. The object
    /// image is captured *now* (immediately post-execution), so commits
    /// staged behind it in a group never alias its snapshot.
    fn make_commit_record(
        &self,
        req: &QrpcRequest,
        urn: Option<&Urn>,
        session_seq: u64,
        reply: &QrpcReply,
    ) -> CommitRecord {
        let obj = match (&req.op, reply.status) {
            // Only a successful export changes the store; everything
            // else commits bookkeeping only.
            (RoverOp::Export { .. }, OpStatus::Ok | OpStatus::Resolved) => {
                urn.and_then(|u| self.store.get(u)).map(|o| o.to_bytes())
            }
            _ => None,
        };
        CommitRecord {
            client: req.client,
            req_id: req.req_id,
            acked_below: req.acked_below,
            session: req.session,
            session_seq,
            urn: req.urn.clone(),
            obj,
            reply: reply.clone(),
        }
    }

    /// Appends this commit's record to the WAL and syncs it; the receipt
    /// prices the flush on the virtual clock.
    fn wal_append_commit(
        &mut self,
        req: &QrpcRequest,
        urn: Option<&Urn>,
        session_seq: u64,
        reply: &QrpcReply,
    ) -> Result<FlushReceipt, LogError> {
        let rec = self.make_commit_record(req, urn, session_seq, reply);
        let wal = self.wal.as_mut().expect("wal attached");
        wal.log.append(REC_COMMIT, rec.to_bytes())?;
        let receipt = wal.log.flush()?;
        wal.commits_since_ckpt += 1;
        Ok(receipt)
    }

    /// True while `key`'s original execution sits in the unflushed
    /// pending batch — its reply exists but is not yet durable, so it
    /// must not be replayed to a retransmission.
    fn pending_contains(&self, key: (u32, u64)) -> bool {
        self.pending
            .iter()
            .any(|p| p.rec.client.0 == key.0 && p.rec.req_id.0 == key.1)
    }

    /// Flushes the pending group: the whole batch becomes durable as one
    /// WAL record, then — and only then — its replies are scheduled.
    /// The flush occupies the *disk* timeline; the CPU keeps executing
    /// requests that stage into the next batch meanwhile (the pipeline).
    fn group_flush(sv: &ServerRef, sim: &mut Sim) {
        let batch = {
            let mut s = sv.borrow_mut();
            s.group_timer_armed = false;
            if s.crashed || s.pending.is_empty() {
                return;
            }
            std::mem::take(&mut s.pending)
        };
        let records: Vec<CommitRecord> = batch.iter().map(|p| p.rec.clone()).collect();
        let res = {
            let mut s = sv.borrow_mut();
            let payload = encode_commit_batch(&records);
            let wal = s.wal.as_mut().expect("group commit requires a wal");
            wal.log
                .append(REC_COMMIT_BATCH, payload)
                .and_then(|_| wal.log.flush())
        };
        let receipt = match res {
            Ok(r) => r,
            Err(e) => {
                // A failed append or sync mid-batch is a crash: the
                // device may hold a torn frame (recovery discards the
                // whole batch), and no reply in the group ever leaves.
                // The batch was already taken out of `pending`, so
                // account its loss here rather than in `crash`.
                sim.stats.incr("server.wal_append_failed");
                sim.stats
                    .add("server.staged_lost_on_crash", batch.len() as u64);
                sim.trace("server", format!("group flush failed: {e}; crashing"));
                Server::crash(sv, sim);
                return;
            }
        };
        let n = batch.len();
        sim.stats.incr("server.group_commits");
        sim.stats.add("server.wal_appends", n as u64);
        sim.stats.sample("server.group_commit_batch_size", n as f64);
        sim.stats
            .add("server.wal_flush_bytes", receipt.bytes as u64);
        // Serialize the flush on the disk horizon and hold every reply
        // in the group until both the flush and that commit's own CPU
        // work are done.
        let (done, fire_delay) = {
            let mut s = sv.borrow_mut();
            s.wal.as_mut().expect("wal attached").commits_since_ckpt += n;
            let cost = s.cfg.storage.flush_cost(receipt);
            let start = s.disk_free_at.max(sim.now());
            let done = start + cost;
            s.disk_free_at = done;
            let ready = batch
                .iter()
                .map(|p| p.cpu_done)
                .max()
                .unwrap_or(done)
                .max(done);
            (done, ready.since(sim.now()))
        };
        for p in &batch {
            sim.stats
                .sample_duration("server.flush_wait_ms", done.since(p.staged_at));
        }
        Server::emit(
            sv,
            sim,
            ServerEvent::GroupCommit {
                records: n,
                wal_bytes: receipt.bytes,
            },
        );
        let inc = sv.borrow().incarnation;
        let sv2 = sv.clone();
        sim.schedule_after(fire_delay, move |sim| {
            Server::dispatch_batch(&sv2, sim, inc, batch);
        });

        // Checkpoint when due — the pending batch is empty here, so the
        // snapshot can never strand half a group.
        let due = {
            let s = sv.borrow();
            s.cfg.checkpoint_every > 0
                && s.wal
                    .as_ref()
                    .is_some_and(|w| w.commits_since_ckpt >= s.cfg.checkpoint_every)
        };
        if due {
            let _ = Server::write_checkpoint(sv, sim);
        }
    }

    /// Graceful-shutdown path: durably flushes any staged group-commit
    /// batch, then writes a checkpoint so the next recovery replays
    /// nothing. Replies for the flushed batch are scheduled as usual —
    /// whether they leave before the process exits is immaterial, since
    /// the commits are durable and retransmissions replay their replies
    /// from the dedup table after restart.
    ///
    /// A no-op on a crashed server or one without a WAL.
    pub fn flush_and_checkpoint(sv: &ServerRef, sim: &mut Sim) {
        if sv.borrow().crashed || sv.borrow().wal.is_none() {
            return;
        }
        Server::group_flush(sv, sim);
        // A WAL fault during the flush crashes the server; don't follow
        // a failed flush with a checkpoint of un-replayable state.
        if !sv.borrow().crashed {
            let _ = Server::write_checkpoint(sv, sim);
        }
    }

    /// Sends the replies of one durably committed group, coalescing the
    /// per-client runs into single [`ReplyBatch`] envelopes, then fans
    /// out the group's deferred invalidation callbacks.
    fn dispatch_batch(sv: &ServerRef, sim: &mut Sim, inc: u64, batch: Vec<PendingCommit>) {
        {
            let s = sv.borrow();
            // A stale dispatch from before a crash: the commits are
            // durable (retransmissions replay from the recovered dedup
            // cache) but this incarnation's replies never left.
            if s.crashed || s.incarnation != inc {
                sim.stats
                    .add("server.reply_dropped_crashed", batch.len() as u64);
                return;
            }
        }
        let host = sv.borrow().cfg.host;
        // Group by client, preserving commit order within each run.
        let mut groups: Vec<(HostId, Vec<&PendingCommit>)> = Vec::new();
        for p in &batch {
            match groups.iter_mut().find(|(c, _)| *c == p.rec.client) {
                Some((_, v)) => v.push(p),
                None => groups.push((p.rec.client, vec![p])),
            }
        }
        for (client, ps) in groups {
            if ps.len() == 1 {
                Server::send_reply(sv, sim, client, ps[0].rec.reply.clone(), ps[0].prio);
            } else {
                // One envelope, many replies: the client decodes them in
                // order. The envelope travels at the most urgent of the
                // coalesced priorities.
                let prio = ps.iter().map(|p| p.prio).min().expect("non-empty run");
                let rb = ReplyBatch {
                    replies: ps.iter().map(|p| p.rec.reply.clone()).collect(),
                };
                let env = Envelope::reply_batch(host, client, &rb);
                sim.stats
                    .add("server.reply_coalesced", (ps.len() - 1) as u64);
                Server::route_reply(sv, sim, client, env, prio, ps.len() as u64);
            }
        }
        for p in &batch {
            if let Some((urn, version)) = &p.notify {
                Server::notify_importers(sv, sim, urn, *version, p.rec.client);
            }
        }
    }

    /// Group-commit staging: charges the execute/marshal CPU (no flush
    /// on the critical path), stages the commit record into the pending
    /// batch, and triggers a size-cap flush or arms the window timer.
    #[allow(clippy::too_many_arguments)]
    fn stage_commit(
        sv: &ServerRef,
        sim: &mut Sim,
        req: &QrpcRequest,
        parsed: Option<Urn>,
        ordered_seq: u64,
        reply: QrpcReply,
        steps: u64,
        ordinal: u64,
    ) {
        let committed = matches!(req.op, RoverOp::Export { .. })
            && matches!(reply.status, OpStatus::Ok | OpStatus::Resolved);
        let (total, flush_now, arm, window) = {
            let mut s = sv.borrow_mut();
            let raw = s.cfg.cpu.interp_cost(steps) + s.cfg.cpu.marshal_cost(reply.payload.len());
            let total = s.charge_serial(sim.now(), raw);
            let notify = if committed && s.cfg.callbacks {
                parsed.clone().map(|u| (u, reply.version))
            } else {
                None
            };
            let rec = s.make_commit_record(req, parsed.as_ref(), ordered_seq, &reply);
            s.pending.push(PendingCommit {
                rec,
                prio: req.priority,
                notify,
                staged_at: sim.now(),
                cpu_done: sim.now() + total,
            });
            let CommitPolicy::Group { max_batch, window } = s.cfg.commit else {
                unreachable!("stage_commit requires a group policy");
            };
            let flush_now = s.pending.len() >= max_batch.max(1);
            let arm = !flush_now && s.pending.len() == 1;
            (total, flush_now, arm, window)
        };
        sim.stats.sample_duration("server.exec_ms", total);
        sim.stats.incr("server.requests");
        // Crash scripted *after* the append-stage: the batch was never
        // flushed, so nothing is durable and no reply ever leaves —
        // after recovery the client's retransmission executes freshly.
        if sv.borrow().crash_due(ordinal, CrashPoint::AfterAppend) {
            Server::crash(sv, sim);
            return;
        }
        if flush_now {
            Server::group_flush(sv, sim);
        } else if arm {
            // First commit into an empty batch: bound its wait with the
            // window timer. The generation guard keeps a stale timer
            // (whose batch a size-cap flush already committed) from
            // cutting the *next* batch short.
            let (inc, gen) = {
                let mut s = sv.borrow_mut();
                s.group_timer_armed = true;
                s.group_timer_gen += 1;
                (s.incarnation, s.group_timer_gen)
            };
            let sv2 = sv.clone();
            sim.schedule_after(window, move |sim| {
                let live = {
                    let s = sv2.borrow();
                    !s.crashed
                        && s.incarnation == inc
                        && s.group_timer_armed
                        && s.group_timer_gen == gen
                };
                if live {
                    Server::group_flush(&sv2, sim);
                }
            });
        }
    }

    /// Snapshots the full server state into the log as a checkpoint
    /// record, then compacts everything older than it. On success the
    /// device holds one checkpoint plus the commits since.
    fn write_checkpoint(sv: &ServerRef, sim: &mut Sim) -> Result<(), LogError> {
        let res = {
            let mut s = sv.borrow_mut();
            s.checkpoint_inner()
        };
        match res {
            Ok((device_bytes, written, compact_failed)) => {
                sim.stats.incr("server.checkpoints");
                if compact_failed {
                    // The device keeps dead frames (recovery ignores
                    // records older than the newest checkpoint); only
                    // space reclamation was lost.
                    sim.stats.incr("server.wal_compact_failed");
                }
                // Price the snapshot write like any other flush.
                let cost = {
                    let mut s = sv.borrow_mut();
                    let raw = s.cfg.storage.flush_cost(FlushReceipt {
                        bytes: written,
                        records: 1,
                        synced: true,
                    });
                    s.charge_serial(sim.now(), raw)
                };
                let _ = cost;
                Server::emit(sv, sim, ServerEvent::Checkpoint { device_bytes });
                Ok(())
            }
            Err(e) => {
                sim.stats.incr("server.wal_append_failed");
                sim.trace("server", format!("checkpoint failed: {e}; crashing"));
                Server::crash(sv, sim);
                Err(e)
            }
        }
    }

    /// Appends + syncs the checkpoint record and prunes the log behind
    /// it. Returns (device bytes after, snapshot bytes written, whether
    /// compaction failed non-fatally).
    fn checkpoint_inner(&mut self) -> Result<(u64, usize, bool), LogError> {
        // A snapshot with staged-but-unflushed commits baked in would
        // make an undurable group visible to recovery; every call site
        // flushes or empties the batch first.
        debug_assert!(self.pending.is_empty(), "checkpoint with staged commits");
        let snap = self.export_store();
        let written = snap.len();
        let wal = self
            .wal
            .as_mut()
            .ok_or_else(|| LogError::Io("no wal attached".into()))?;
        let seq = wal.log.append(REC_CHECKPOINT, snap)?;
        wal.log.flush()?;
        let old: Vec<u64> = wal
            .log
            .records()
            .map(|r| r.seq)
            .filter(|&q| q < seq)
            .collect();
        let had_old = !old.is_empty();
        for q in old {
            let _ = wal.log.remove(q);
        }
        // A failed compaction is safe: the durable image still contains
        // the (now-dead) pre-checkpoint frames, and recovery ignores
        // anything older than the newest checkpoint. When nothing was
        // removed (the very first checkpoint) there is nothing to
        // reclaim, so the device rewrite is skipped entirely.
        let compact_failed = had_old && wal.log.compact().is_err();
        wal.commits_since_ckpt = 0;
        Ok((wal.log.device_len(), written, compact_failed))
    }

    // ------------------------------------------------------------------

    /// Serializes an execution cost behind earlier server work.
    fn charge_serial(
        &mut self,
        now: rover_sim::SimTime,
        cost: rover_sim::SimDuration,
    ) -> rover_sim::SimDuration {
        let start = self.cpu_free_at.max(now);
        let done = start + cost;
        self.cpu_free_at = done;
        done.since(now)
    }

    fn on_request(sv: &ServerRef, sim: &mut Sim, env: Envelope) {
        // A crashed host receives nothing: the envelope vanishes and the
        // client's retransmission machinery takes over.
        if sv.borrow().crashed {
            sim.stats.incr("server.dropped_while_crashed");
            return;
        }
        // Charge unmarshalling cost, then process.
        let cost = {
            let mut s = sv.borrow_mut();
            let m = s.cfg.cpu.marshal_cost(env.body.len());
            s.charge_serial(sim.now(), m)
        };
        let sv2 = sv.clone();
        sim.schedule_after(cost, move |sim| {
            if sv2.borrow().crashed {
                sim.stats.incr("server.dropped_while_crashed");
                return;
            }
            let req = match QrpcRequest::from_shared(&env.body) {
                Ok(r) => r,
                Err(_) => {
                    sim.stats.incr("server.bad_request");
                    sim.stats.incr("wire.decode_rejected.request");
                    return;
                }
            };
            Server::admit(&sv2, sim, req);
        });
    }

    /// Ordering gate: ordered exports must arrive in per-session
    /// sequence; later ones are held, duplicates replay the cached
    /// reply.
    fn admit(sv: &ServerRef, sim: &mut Sim, req: QrpcRequest) {
        // Queue-depth sample at admission: staged commits plus ordered
        // and writes-follow-reads holds (the digest's p50/p99 series).
        sim.stats
            .sample("server.qdepth", sv.borrow().queue_depth() as f64);
        // Authentication gate: reject before any state is touched.
        let authed = match &sv.borrow().accepted_tokens {
            None => true,
            Some(set) => set.contains(&req.auth),
        };
        if !authed {
            sim.stats.incr("server.auth_rejected");
            let reply = QrpcReply {
                req_id: req.req_id,
                status: OpStatus::Rejected,
                version: Version(0),
                payload: Bytes::new(),
            };
            Server::send_reply(sv, sim, req.client, reply, req.priority);
            return;
        }

        // Advance this client's acknowledgement floor (piggybacked on
        // every request) and prune executed-id state below it.
        let floor = {
            let mut s = sv.borrow_mut();
            let floor = s.ack_floor.entry(req.client.0).or_insert(0);
            if req.acked_below > *floor {
                *floor = req.acked_below;
            }
            let floor = *floor;
            if let Some(ex) = s.executed.get_mut(&req.client.0) {
                *ex = ex.split_off(&floor);
            }
            floor
        };

        // At-most-once: a replayed request gets its original reply —
        // unless the original still sits in an unflushed group, where
        // the reply exists in volatile state only. Replaying it now
        // would leak a commit that a crash could still un-happen; drop
        // the duplicate instead, and the client's next retransmission
        // finds either a durably flushed dedup entry or (after a crash)
        // no trace of the request at all.
        let key = (req.client.0, req.req_id.0);
        if sv.borrow().pending_contains(key) {
            sim.stats.incr("server.dup_while_staged");
            return;
        }
        let cached = sv.borrow().dedup.get(&key).cloned();
        if let Some(reply) = cached {
            sim.stats.incr("server.dedup_replay");
            sim.trace("server", format!("dedup replay req={}", req.req_id.0));
            Server::send_reply(sv, sim, req.client, reply, req.priority);
            return;
        }

        // A request from below the floor is a duplicate whose reply the
        // client already processed (e.g. a network-duplicated copy
        // straggling in after the acknowledgement). Its dedup entry may
        // legitimately be gone; never execute it again — answer with
        // the current committed state.
        if req.req_id.0 < floor {
            sim.stats.incr("server.below_floor_duplicate");
            sim.trace(
                "server",
                format!("below-floor duplicate req={} floor={}", req.req_id.0, floor),
            );
            let reply = Server::state_reply(sv, &req);
            Server::send_reply(sv, sim, req.client, reply, req.priority);
            return;
        }

        // Cross-shard writes-follow-reads gate: the request carries the
        // session's read floors for objects homed *here*. If our
        // committed copy of any named object is older than its floor,
        // admitting the write now would order it before reads the
        // session already performed on another shard's state — hold it
        // until the local copy catches up (drained when the object's
        // version advances; a crash drops the holds and the client
        // retransmits).
        if matches!(req.op, RoverOp::Export { .. }) && !req.read_vector.is_empty() {
            sim.stats.incr("server.wfr_checked");
            let behind = {
                let s = sv.borrow();
                req.read_vector.iter().find_map(|(name, fl)| {
                    // A floor constrains only objects homed *here*: one
                    // naming an object that routes to another shard
                    // (hashed there, or migrated away) is that shard's
                    // to enforce — holding on it would wait forever.
                    if s.homed_elsewhere(name) {
                        return None;
                    }
                    let cur = Urn::parse(name)
                        .ok()
                        .and_then(|u| s.store.get(&u).map(|o| o.version.0))
                        .unwrap_or(0);
                    if cur < *fl {
                        Urn::parse(name).ok()
                    } else {
                        None
                    }
                })
            };
            if let Some(urn) = behind {
                sim.stats.incr("server.wfr_held");
                sim.trace(
                    "server",
                    format!("wfr hold req={} behind on {urn}", req.req_id.0),
                );
                sv.borrow_mut().wfr_held.entry(urn).or_default().push(req);
                return;
            }
        }

        let ordered_seq = match &req.op {
            RoverOp::Export { .. } => ExportPayload::from_shared(&req.payload)
                .map(|p| p.session_seq)
                .unwrap_or(0),
            _ => 0,
        };
        if ordered_seq > 0 {
            let skey = (req.client.0, req.session.0);
            let expected = {
                let mut s = sv.borrow_mut();
                *s.expected_seq.entry(skey).or_insert(1)
            };
            if ordered_seq > expected {
                sim.stats.incr("server.held_out_of_order");
                sv.borrow_mut()
                    .held
                    .entry(skey)
                    .or_default()
                    .insert(ordered_seq, req);
                return;
            }
            if ordered_seq < expected {
                // A stale duplicate whose dedup entry was evicted: never
                // re-execute; answer with the current committed state.
                sim.stats.incr("server.stale_duplicate");
                let reply = Server::state_reply(sv, &req);
                Server::send_reply(sv, sim, req.client, reply, req.priority);
                return;
            }
            // ordered_seq == expected: process, then drain any held
            // successors.
            Server::process(sv, sim, req);
            loop {
                // A crash mid-drain kills the host; remaining held
                // writes die with the volatile state.
                if sv.borrow().crashed {
                    break;
                }
                let next = {
                    let mut s = sv.borrow_mut();
                    let exp = s.expected_seq.get(&skey).copied().unwrap_or(1);
                    s.held.get_mut(&skey).and_then(|h| h.remove(&exp))
                };
                match next {
                    Some(r) => Server::process(sv, sim, r),
                    None => break,
                }
            }
        } else {
            Server::process(sv, sim, req);
        }
    }

    /// Reply reflecting the current committed state of the request's
    /// object, for duplicates that must never re-execute.
    fn state_reply(sv: &ServerRef, req: &QrpcRequest) -> QrpcReply {
        let s = sv.borrow();
        let obj = Urn::parse(&req.urn)
            .ok()
            .and_then(|u| s.store.get(&u).cloned());
        match obj {
            Some(o) => QrpcReply {
                req_id: req.req_id,
                status: OpStatus::Ok,
                version: o.version,
                payload: o.to_bytes(),
            },
            None => QrpcReply {
                req_id: req.req_id,
                status: OpStatus::NoSuchObject,
                version: Version(0),
                payload: Bytes::new(),
            },
        }
    }

    fn process(sv: &ServerRef, sim: &mut Sim, req: QrpcRequest) {
        if sv.borrow().crashed {
            sim.stats.incr("server.dropped_while_crashed");
            return;
        }
        let client = req.client;
        // Parse the request URN exactly once; execution and the
        // callback fan-out below both use this parse.
        let parsed = Urn::parse(&req.urn).ok();
        // Ordered-write sequence this commit consumes (0 = unordered);
        // recorded in the commit record so the session floor recovers.
        let ordered_seq = match &req.op {
            RoverOp::Export { .. } => ExportPayload::from_shared(&req.payload)
                .map(|p| p.session_seq)
                .unwrap_or(0),
            _ => 0,
        };

        // With a WAL attached this is a commit: number it (the scripted
        // crash ordinal, monotone across restarts) and honour a crash
        // scripted *before* the append — nothing was ever made durable
        // or replied, so after recovery the client's retransmission is a
        // clean first execution.
        let wal_bound = sv.borrow().wal.is_some();
        let ordinal = if wal_bound {
            let mut s = sv.borrow_mut();
            s.commit_ordinal += 1;
            s.commit_ordinal
        } else {
            0
        };
        if wal_bound && sv.borrow().crash_due(ordinal, CrashPoint::BeforeAppend) {
            Server::crash(sv, sim);
            return;
        }

        let (reply, steps) = {
            let mut s = sv.borrow_mut();
            // A second execution of the same request id means its dedup
            // entry was evicted while the client could still retransmit
            // — the at-most-once hazard the acknowledgement floor
            // exists to prevent. Counted and traced, never silent.
            let seen = s
                .executed
                .get(&req.client.0)
                .is_some_and(|ex| ex.contains(&req.req_id.0));
            if seen {
                sim.stats.incr("server.dedup_miss_reexec");
                sim.trace(
                    "server",
                    format!("dedup entry evicted; re-executing req={}", req.req_id.0),
                );
            }
            // Hot-set tracking: every import/export against this shard
            // is a hit (the epoch tick folds the counters into stats).
            if let Some(h) = s.hotset.as_mut() {
                if matches!(req.op, RoverOp::Import | RoverOp::Export { .. }) {
                    h.touch(&req.urn);
                }
            }
            let rr_before = s.replica_reads_n;
            let pr_before = s.parse_rejected_n;
            let out = s.execute(&req, parsed.as_ref());
            if s.replica_reads_n > rr_before {
                sim.stats.incr("server.replica_reads");
            }
            if s.parse_rejected_n > pr_before {
                sim.stats.incr("script.parse_rejected");
            }
            out
        };
        match reply.status {
            OpStatus::WrongShard => sim.stats.incr("server.wrong_shard"),
            OpStatus::Ok | OpStatus::Resolved if matches!(req.op, RoverOp::Export { .. }) => {
                // Committed write: feed the shared load counters (the
                // rebalancer and the imbalance metric read them).
                let mut s = sv.borrow_mut();
                s.commits_n += 1;
                if let Some((map, idx)) = &s.shard_routing {
                    map.note_commit(*idx);
                }
            }
            _ => {}
        }

        // Under a group policy the commit stages into the pending batch
        // below; durability and the reply wait for the group flush.
        let group = wal_bound && sv.borrow().cfg.commit.is_group();

        // Per-operation durability point: the commit record reaches
        // stable storage before any reply is scheduled. A failed append
        // or sync is a mid-flush crash — the host goes down with a
        // possibly-torn frame on the device, which recovery truncates.
        let mut wal_cost = rover_sim::SimDuration::ZERO;
        if wal_bound && !group {
            let res = {
                let mut s = sv.borrow_mut();
                s.wal_append_commit(&req, parsed.as_ref(), ordered_seq, &reply)
            };
            match res {
                Ok(receipt) => {
                    sim.stats.incr("server.wal_appends");
                    sim.stats
                        .add("server.wal_flush_bytes", receipt.bytes as u64);
                    wal_cost = sv.borrow().cfg.storage.flush_cost(receipt);
                }
                Err(e) => {
                    sim.stats.incr("server.wal_append_failed");
                    sim.trace("server", format!("wal append failed: {e}; crashing"));
                    Server::crash(sv, sim);
                    return;
                }
            }
            // Crash scripted *after* the append: the commit is durable
            // but the reply never leaves — after recovery the client's
            // retransmission hits the recovered dedup cache.
            if sv.borrow().crash_due(ordinal, CrashPoint::AfterAppend) {
                Server::crash(sv, sim);
                return;
            }
        }

        // Record dedup + ordering bookkeeping.
        {
            let mut s = sv.borrow_mut();
            if let RoverOp::Export { .. } = &req.op {
                if let Ok(p) = ExportPayload::from_shared(&req.payload) {
                    if p.session_seq > 0 {
                        let skey = (req.client.0, req.session.0);
                        let e = s.expected_seq.entry(skey).or_insert(1);
                        *e = (*e).max(p.session_seq + 1);
                    }
                }
            }
            let key = (req.client.0, req.req_id.0);
            s.executed
                .entry(req.client.0)
                .or_default()
                .insert(req.req_id.0);
            if s.dedup.insert(key, reply.clone()).is_none() {
                s.dedup_order.push_back(key);
                // Evict only entries the owning client has acknowledged
                // (id below its floor): an entry at or above the floor
                // may still be needed to absorb a retransmission, so
                // its eviction is deferred — the cache grows past
                // capacity and retries on the next insert.
                while s.dedup_order.len() > s.cfg.dedup_capacity {
                    let evictable = s
                        .dedup_order
                        .iter()
                        .position(|k| k.1 < s.ack_floor.get(&k.0).copied().unwrap_or(0));
                    match evictable {
                        Some(i) => {
                            if let Some(old) = s.dedup_order.remove(i) {
                                s.dedup.remove(&old);
                            }
                        }
                        None => {
                            sim.stats.incr("server.dedup_evict_deferred");
                            break;
                        }
                    }
                }
            }
        }

        if group {
            Server::stage_commit(
                sv,
                sim,
                &req,
                parsed.clone(),
                ordered_seq,
                reply,
                steps,
                ordinal,
            );
            // The object's version advanced at execute time: any
            // cross-shard writes-follow-reads holds it satisfies
            // re-enter admission now (after this commit staged, so WAL
            // order preserves the dependency).
            Server::drain_wfr(sv, sim, parsed.as_ref());
            return;
        }

        // Checkpoint when due; a failed checkpoint crashes the host
        // (the commit above is already durable, so the unsent reply is
        // recovered into the dedup cache and replayed on retransmit).
        if wal_bound {
            let due = {
                let s = sv.borrow();
                s.cfg.checkpoint_every > 0
                    && s.wal
                        .as_ref()
                        .is_some_and(|w| w.commits_since_ckpt >= s.cfg.checkpoint_every)
            };
            if due {
                let _ = Server::write_checkpoint(sv, sim);
                if sv.borrow().crashed {
                    return;
                }
            }
        }

        // Charge execution + reply marshalling + the commit flush, then
        // transmit.
        let total = {
            let mut s = sv.borrow_mut();
            let raw = s.cfg.cpu.interp_cost(steps)
                + s.cfg.cpu.marshal_cost(reply.payload.len())
                + wal_cost;
            s.charge_serial(sim.now(), raw)
        };
        sim.stats.sample_duration("server.exec_ms", total);
        sim.stats.incr("server.requests");
        let reply_status = reply.status;
        let reply_version = reply.version;
        let sv2 = sv.clone();
        let prio = req.priority;
        sim.schedule_after(total, move |sim| {
            Server::send_reply(&sv2, sim, client, reply, prio);
        });

        // Cache-invalidation callbacks: tell other importers that a new
        // version committed (paper §2's "server callbacks" option).
        let committed = matches!(req.op, RoverOp::Export { .. })
            && matches!(reply_status, OpStatus::Ok | OpStatus::Resolved);
        if committed && sv.borrow().cfg.callbacks {
            if let Some(urn) = &parsed {
                Server::notify_importers(sv, sim, urn, reply_version, client);
            }
        }

        // The object's version advanced at execute time: drain any
        // cross-shard writes-follow-reads holds this commit satisfied
        // (after the commit's own WAL record, preserving dependency
        // order on replay).
        Server::drain_wfr(sv, sim, parsed.as_ref());
    }

    /// Re-admits cross-shard writes-follow-reads holds waiting on `urn`
    /// whose read floor the current committed version now satisfies.
    /// Each freed request re-runs the full admission gauntlet (it may
    /// re-hold on another object it is still behind on).
    fn drain_wfr(sv: &ServerRef, sim: &mut Sim, urn: Option<&Urn>) {
        let Some(urn) = urn else { return };
        if sv.borrow().crashed {
            return;
        }
        let freed = {
            let mut s = sv.borrow_mut();
            let Some(held) = s.wfr_held.remove(urn) else {
                return;
            };
            let cur = s.store.get(urn).map(|o| o.version.0).unwrap_or(0);
            let (freed, kept): (Vec<_>, Vec<_>) = held.into_iter().partition(|r| {
                r.read_vector
                    .iter()
                    .filter(|(name, _)| Urn::parse(name).ok().as_ref() == Some(urn))
                    .all(|(_, fl)| cur >= *fl)
            });
            if !kept.is_empty() {
                s.wfr_held.insert(urn.clone(), kept);
            }
            freed
        };
        for r in freed {
            sim.stats.incr("server.wfr_drained");
            Server::admit(sv, sim, r);
        }
    }

    /// Requests currently held by the cross-shard writes-follow-reads
    /// gate (waiting for a local object version to catch up).
    pub fn wfr_held_count(&self) -> usize {
        self.wfr_held.values().map(Vec::len).sum()
    }

    /// Sends a small callback envelope to every importer of `urn`
    /// except `exclude`. Callbacks are best-effort background traffic:
    /// a disconnected importer simply misses it (and still detects the
    /// change at export time via version comparison).
    fn notify_importers(
        sv: &ServerRef,
        sim: &mut Sim,
        urn: &Urn,
        version: Version,
        exclude: HostId,
    ) {
        let (host, targets) = {
            let s = sv.borrow();
            let targets: Vec<u32> = s
                .importers
                .get(urn)
                .map(|set| set.iter().copied().filter(|c| *c != exclude.0).collect())
                .unwrap_or_default();
            (s.cfg.host, targets)
        };
        if targets.is_empty() {
            return;
        }
        let mut enc = Encoder::new();
        enc.put_str(urn.as_str());
        enc.put_u64(version.0);
        let body = enc.finish();
        for t in targets {
            let env = Envelope {
                kind: MsgKind::Callback,
                src: host,
                dst: HostId(t),
                body: body.clone(),
            };
            Server::send_callback(sv, sim, HostId(t), env);
            sim.stats.incr("server.callbacks_sent");
        }
    }

    fn send_callback(sv: &ServerRef, sim: &mut Sim, client: HostId, env: Envelope) {
        let (net, sched) = {
            let s = sv.borrow();
            (
                s.net.clone(),
                s.routes.get(&client.0).and_then(|r| r.sched.clone()),
            )
        };
        if let Some(sched) = sched {
            HostSched::enqueue_keyed(
                &sched,
                sim,
                &net,
                env,
                rover_wire::Priority::BACKGROUND,
                None,
            );
        }
    }

    /// Pure state transition: executes `req` against the store and
    /// returns the reply plus interpreter steps consumed. `urn` is the
    /// caller's already-parsed `req.urn` (`None` = unparsable).
    fn execute(&mut self, req: &QrpcRequest, urn: Option<&Urn>) -> (QrpcReply, u64) {
        let fail = |status: OpStatus| QrpcReply {
            req_id: req.req_id,
            status,
            version: Version(0),
            payload: Bytes::new(),
        };
        let Some(urn) = urn else {
            return (fail(OpStatus::Rejected), 0);
        };

        match &req.op {
            RoverOp::Ping => (
                QrpcReply {
                    req_id: req.req_id,
                    status: OpStatus::Ok,
                    version: Version(0),
                    payload: Bytes::new(),
                },
                0,
            ),

            RoverOp::Import => match self.store.get(urn) {
                Some(obj) => {
                    self.importers
                        .entry(urn.clone())
                        .or_default()
                        .insert(req.client.0);
                    (
                        QrpcReply {
                            req_id: req.req_id,
                            status: OpStatus::Ok,
                            version: obj.version,
                            payload: obj.to_bytes(),
                        },
                        0,
                    )
                }
                None => {
                    // Replica serve: a read routed here by the replica
                    // directory. The session's floor travels in the
                    // request's read-vector; the replica serves only
                    // when its version satisfies it (monotonic reads
                    // never weaken), else the client re-routes home.
                    if let Some((rep, _)) = self.replicas.get(urn) {
                        let floor = req
                            .read_vector
                            .iter()
                            .filter(|(name, _)| *name == req.urn)
                            .map(|(_, fl)| *fl)
                            .max()
                            .unwrap_or(0);
                        if rep.version.0 >= floor {
                            let reply = QrpcReply {
                                req_id: req.req_id,
                                status: OpStatus::Ok,
                                version: rep.version,
                                payload: rep.to_bytes(),
                            };
                            self.replica_reads_n += 1;
                            return (reply, 0);
                        }
                        return (fail(OpStatus::WrongShard), 0);
                    }
                    if self.homed_elsewhere(&req.urn) {
                        return (fail(OpStatus::WrongShard), 0);
                    }
                    (fail(OpStatus::NoSuchObject), 0)
                }
            },

            RoverOp::Invoke { .. } => {
                let payload = match InvokePayload::from_shared(&req.payload) {
                    Ok(p) => p,
                    Err(_) => return (fail(OpStatus::Rejected), 0),
                };
                let Some(obj) = self.store.get(urn) else {
                    let status = if self.homed_elsewhere(&req.urn) {
                        OpStatus::WrongShard
                    } else {
                        OpStatus::NoSuchObject
                    };
                    return (fail(status), 0);
                };
                // Invocations are read-only: run on a scratch copy.
                let mut scratch = obj.clone();
                let args: Vec<rover_script::Value> =
                    payload.args.iter().map(rover_script::Value::str).collect();
                match scratch.run_method(&payload.method, &args, self.cfg.budget) {
                    Ok(run) => {
                        let mut enc = Encoder::new();
                        enc.put_str(&run.result.as_str());
                        (
                            QrpcReply {
                                req_id: req.req_id,
                                status: OpStatus::Ok,
                                version: obj.version,
                                payload: enc.finish(),
                            },
                            run.steps,
                        )
                    }
                    Err(crate::RoverError::NoSuchMethod(_)) => (fail(OpStatus::NoSuchMethod), 0),
                    Err(crate::RoverError::ScriptParse(_)) => {
                        self.parse_rejected_n += 1;
                        (fail(OpStatus::ExecError), 0)
                    }
                    Err(_) => (fail(OpStatus::ExecError), 0),
                }
            }

            RoverOp::Export { .. } => {
                let payload = match ExportPayload::from_shared(&req.payload) {
                    Ok(p) => p,
                    Err(_) => return (fail(OpStatus::Rejected), 0),
                };
                let Some(current) = self.store.get(urn) else {
                    // A write whose object was migrated away (or never
                    // homed here): the client re-routes it to the
                    // current home. The reply still commits dedup +
                    // ordering bookkeeping here, so the session's
                    // sequence floor advances and retransmissions of
                    // this id replay `WrongShard` instead of blocking.
                    let status = if self.homed_elsewhere(&req.urn) {
                        OpStatus::WrongShard
                    } else {
                        OpStatus::NoSuchObject
                    };
                    return (fail(status), 0);
                };

                let conflict = req.base_version != current.version;
                let (resolution, resolved_status) = if conflict {
                    let resolver: &dyn Resolver = self
                        .resolvers
                        .get(&current.type_name)
                        .map(|b| b.as_ref())
                        .unwrap_or(&RejectResolver);
                    (
                        resolver.resolve(current, req.base_version, &payload),
                        OpStatus::Resolved,
                    )
                } else {
                    (Resolution::Reexecute, OpStatus::Ok)
                };

                match resolution {
                    Resolution::Reject => {
                        // Reflect the conflict with the current state so
                        // the user can reconcile.
                        let obj = self.store.get(urn).expect("checked");
                        (
                            QrpcReply {
                                req_id: req.req_id,
                                status: OpStatus::Conflict,
                                version: obj.version,
                                payload: obj.to_bytes(),
                            },
                            0,
                        )
                    }
                    Resolution::Merged(mut merged) => {
                        let v = Version(self.store.get(urn).expect("checked").version.0 + 1);
                        merged.version = v;
                        let bytes = merged.to_bytes();
                        self.store.insert(urn.clone(), merged);
                        (
                            QrpcReply {
                                req_id: req.req_id,
                                status: OpStatus::Resolved,
                                version: v,
                                payload: bytes,
                            },
                            0,
                        )
                    }
                    Resolution::Reexecute => {
                        let obj = self.store.get_mut(urn).expect("checked");
                        let args: Vec<rover_script::Value> =
                            payload.args.iter().map(rover_script::Value::str).collect();
                        match obj.run_method(&payload.method, &args, self.cfg.budget) {
                            Ok(run) => {
                                obj.version = Version(obj.version.0 + 1);
                                (
                                    QrpcReply {
                                        req_id: req.req_id,
                                        status: resolved_status,
                                        version: obj.version,
                                        payload: obj.to_bytes(),
                                    },
                                    run.steps,
                                )
                            }
                            Err(crate::RoverError::NoSuchMethod(_)) => {
                                (fail(OpStatus::NoSuchMethod), 0)
                            }
                            Err(crate::RoverError::ScriptParse(_)) => {
                                self.parse_rejected_n += 1;
                                (fail(OpStatus::ExecError), 0)
                            }
                            Err(_) => (fail(OpStatus::ExecError), 0),
                        }
                    }
                }
            }

            RoverOp::Custom(_) => (fail(OpStatus::Rejected), 0),
        }
    }

    fn send_reply(
        sv: &ServerRef,
        sim: &mut Sim,
        client: HostId,
        reply: QrpcReply,
        prio: rover_wire::Priority,
    ) {
        let host = sv.borrow().cfg.host;
        let env = Envelope::reply(host, client, &reply);
        Server::route_reply(sv, sim, client, env, prio, 1);
    }

    /// Routes one outbound envelope to `client`: scheduler queue, SMTP
    /// spool, or best-effort direct send. `logical` is how many QRPC
    /// replies the envelope carries (>1 for a coalesced
    /// [`ReplyBatch`]); every counter scales by it.
    fn route_reply(
        sv: &ServerRef,
        sim: &mut Sim,
        client: HostId,
        env: Envelope,
        prio: rover_wire::Priority,
        logical: u64,
    ) {
        // A reply computed before the crash never leaves a dead host.
        if sv.borrow().crashed {
            sim.stats.add("server.reply_dropped_crashed", logical);
            return;
        }
        let (net, host, mut sched, mut any_up, smtp) = {
            let s = sv.borrow();
            let route = s.routes.get(&client.0);
            let any_up = route
                .map(|r| r.links.iter().any(|&l| s.net.is_up(l)))
                .unwrap_or(false);
            (
                s.net.clone(),
                s.cfg.host,
                route.and_then(|r| r.sched.clone()),
                any_up,
                route.and_then(|r| r.smtp.clone()),
            )
        };

        // The mobile client may have switched to an interface we were
        // never told about; learn any up link the network layer knows.
        if !any_up {
            let known: Vec<LinkId> = sv
                .borrow()
                .routes
                .get(&client.0)
                .map(|r| r.links.clone())
                .unwrap_or_default();
            if let Some(l) = net
                .links_between(host, client)
                .into_iter()
                .find(|l| !known.contains(l) && net.is_up(*l))
            {
                sv.borrow_mut().add_route(client, l);
                let s = sv.borrow();
                sched = s.routes.get(&client.0).and_then(|r| r.sched.clone());
                any_up = true;
            }
        }

        // Disconnected client with an SMTP route: spool the reply
        // (split-phase QRPC) instead of queueing it at the server.
        if !any_up {
            if let Some(relay) = smtp {
                SmtpRelay::submit(&relay, sim, env);
                sim.stats.add("server.replies_via_smtp", logical);
                return;
            }
        }

        match sched {
            Some(sched) => {
                // Priority-queued: drains now or whenever a link to the
                // client comes back up.
                HostSched::enqueue_keyed(&sched, sim, &net, env, prio, None);
                sim.stats.add("server.replies", logical);
            }
            None => {
                // No configured route: best-effort direct send.
                match net.up_link_between(host, client) {
                    Some(l) if net.send(sim, l, env).is_ok() => {
                        sim.stats.add("server.replies", logical);
                    }
                    _ => {
                        // The client will retransmit and hit the dedup
                        // cache.
                        sim.stats.add("server.reply_dropped", logical);
                    }
                }
            }
        }
    }
}
