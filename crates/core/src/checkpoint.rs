//! The `ROV1`/`ROV2` checkpoint image codec.
//!
//! A checkpoint is the server's durable state serialized for restart:
//! the `ROV1` sections (object store, per-session write-ordering
//! floors) followed by a `ROV2` extension carrying the at-most-once
//! state (per-client acknowledgement floors, executed-id sets, and the
//! dedup replay cache in eviction order). This module is the *pure*
//! codec — [`Server`](crate::Server) builds a [`CheckpointImage`] from
//! its maps and delegates here, so the byte format can be exercised
//! (round-tripped, fuzzed, proptested) without constructing a server.
//!
//! The decoder parses untrusted bytes: every length and count is
//! validated against the remaining input before use, allocations are
//! capped (a snapshot declaring four billion objects cannot reserve
//! four billion slots before the first one parses), and any surplus
//! trailing bytes are an error. Decoding never touches server state —
//! callers install the image only after the whole buffer parsed.

use rover_wire::{Decoder, Encoder, QrpcReply, Wire, WireError};

use crate::error::RoverError;
use crate::object::RoverObject;

/// Magic opening the base sections: object store + ordering floors.
pub const ROV1_MAGIC: u32 = 0x524F_5631; // "ROV1"
/// Magic opening the at-most-once extension.
pub const ROV2_MAGIC: u32 = 0x524F_5632; // "ROV2"

/// Pre-allocation cap for wire-declared counts. Real counts above this
/// still parse — the vector just grows as elements actually arrive —
/// but a hostile header alone can no longer reserve unbounded memory.
const PREALLOC_CAP: usize = 1024;

fn capped(n: u32) -> usize {
    (n as usize).min(PREALLOC_CAP)
}

/// A parsed (or to-be-written) checkpoint: the server's durable state
/// as plain sorted vectors, decoupled from the server's live maps.
///
/// Encode expects the vectors in their canonical order (objects by URN,
/// the keyed sections by key, dedup in FIFO eviction order) — the
/// server's builder sorts before delegating, and the decoder returns
/// sections in whatever order the image stored them (canonical, for
/// images this codec wrote).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CheckpointImage {
    /// Every object in the home store.
    pub objects: Vec<RoverObject>,
    /// Per-(client, session) next-expected export sequence numbers.
    pub expected_seq: Vec<((u32, u64), u64)>,
    /// Per-client acknowledgement floors.
    pub ack_floors: Vec<(u32, u64)>,
    /// Per-client executed request-id sets.
    pub executed: Vec<(u32, Vec<u64>)>,
    /// Dedup replay cache: ((client, request-id), cached reply), in
    /// FIFO eviction order.
    pub dedup: Vec<((u32, u64), QrpcReply)>,
}

/// Serializes `img` into the `ROV1` + `ROV2` byte format.
pub fn encode_checkpoint(img: &CheckpointImage) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u32(ROV1_MAGIC);
    enc.put_u32(img.objects.len() as u32);
    for o in &img.objects {
        o.encode(&mut enc);
    }
    enc.put_u32(img.expected_seq.len() as u32);
    for ((client, session), expected) in &img.expected_seq {
        enc.put_u32(*client);
        enc.put_u64(*session);
        enc.put_u64(*expected);
    }

    enc.put_u32(ROV2_MAGIC);
    enc.put_u32(img.ack_floors.len() as u32);
    for (client, floor) in &img.ack_floors {
        enc.put_u32(*client);
        enc.put_u64(*floor);
    }
    enc.put_u32(img.executed.len() as u32);
    for (client, ids) in &img.executed {
        enc.put_u32(*client);
        enc.put_u32(ids.len() as u32);
        for id in ids {
            enc.put_u64(*id);
        }
    }
    enc.put_u32(img.dedup.len() as u32);
    for ((client, req), reply) in &img.dedup {
        enc.put_u32(*client);
        enc.put_u64(*req);
        reply.encode(&mut enc);
    }
    enc.into_vec()
}

fn wire(e: WireError) -> RoverError {
    RoverError::from(e)
}

/// Parses a checkpoint image, validating everything before returning.
///
/// Images that predate the `ROV2` extension (nothing after the `ROV1`
/// sections) decode with empty at-most-once state. Anything else —
/// wrong magic, truncation mid-section, or trailing bytes past the
/// last section — is an error and the whole image is rejected.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<CheckpointImage, RoverError> {
    let mut dec = Decoder::new(bytes);
    let magic = dec.get_u32().map_err(wire)?;
    if magic != ROV1_MAGIC {
        return Err(RoverError::Wire("bad checkpoint magic".into()));
    }
    let n = dec.get_u32().map_err(wire)?;
    let mut objects = Vec::with_capacity(capped(n));
    for _ in 0..n {
        objects.push(RoverObject::decode(&mut dec).map_err(wire)?);
    }
    let m = dec.get_u32().map_err(wire)?;
    let mut expected_seq = Vec::with_capacity(capped(m));
    for _ in 0..m {
        let client = dec.get_u32().map_err(wire)?;
        let session = dec.get_u64().map_err(wire)?;
        let expected = dec.get_u64().map_err(wire)?;
        expected_seq.push(((client, session), expected));
    }
    let mut img = CheckpointImage {
        objects,
        expected_seq,
        ..CheckpointImage::default()
    };
    if dec.remaining() == 0 {
        return Ok(img);
    }
    let magic2 = dec.get_u32().map_err(wire)?;
    if magic2 != ROV2_MAGIC {
        return Err(RoverError::Wire("bad checkpoint extension".into()));
    }
    let nf = dec.get_u32().map_err(wire)?;
    img.ack_floors.reserve(capped(nf));
    for _ in 0..nf {
        let client = dec.get_u32().map_err(wire)?;
        let floor = dec.get_u64().map_err(wire)?;
        img.ack_floors.push((client, floor));
    }
    let ne = dec.get_u32().map_err(wire)?;
    img.executed.reserve(capped(ne));
    for _ in 0..ne {
        let client = dec.get_u32().map_err(wire)?;
        let count = dec.get_u32().map_err(wire)?;
        let mut ids = Vec::with_capacity(capped(count));
        for _ in 0..count {
            ids.push(dec.get_u64().map_err(wire)?);
        }
        img.executed.push((client, ids));
    }
    let nd = dec.get_u32().map_err(wire)?;
    img.dedup.reserve(capped(nd));
    for _ in 0..nd {
        let client = dec.get_u32().map_err(wire)?;
        let req = dec.get_u64().map_err(wire)?;
        let reply = QrpcReply::decode(&mut dec).map_err(wire)?;
        img.dedup.push(((client, req), reply));
    }
    dec.expect_end().map_err(wire)?;
    Ok(img)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::urn::Urn;
    use rover_wire::{OpStatus, RequestId, Version};

    fn reply(req: u64) -> QrpcReply {
        QrpcReply {
            req_id: RequestId(req),
            status: OpStatus::Ok,
            version: Version(3),
            payload: rover_wire::Bytes::from_static(b"ok"),
        }
    }

    fn sample() -> CheckpointImage {
        CheckpointImage {
            objects: vec![
                RoverObject::new(Urn::parse("urn:rover:t/a").unwrap(), "t").with_field("k", "v"),
                RoverObject::new(Urn::parse("urn:rover:t/b").unwrap(), "t"),
            ],
            expected_seq: vec![((1, 10), 4), ((2, 11), 1)],
            ack_floors: vec![(1, 3), (2, 0)],
            executed: vec![(1, vec![1, 2, 3]), (2, vec![7])],
            dedup: vec![((1, 3), reply(3)), ((2, 7), reply(7))],
        }
    }

    #[test]
    fn round_trip_is_identity() {
        let img = sample();
        let bytes = encode_checkpoint(&img);
        let back = decode_checkpoint(&bytes).unwrap();
        assert_eq!(back, img);
        // And re-encoding the decode is byte-identical.
        assert_eq!(encode_checkpoint(&back), bytes);
    }

    #[test]
    fn empty_image_round_trips() {
        let img = CheckpointImage::default();
        let bytes = encode_checkpoint(&img);
        assert_eq!(decode_checkpoint(&bytes).unwrap(), img);
    }

    #[test]
    fn rov1_only_images_decode_with_empty_extension() {
        // A legacy snapshot: ROV1 sections, nothing after.
        let mut enc = Encoder::new();
        enc.put_u32(ROV1_MAGIC);
        enc.put_u32(0); // objects
        enc.put_u32(1); // seqs
        enc.put_u32(9);
        enc.put_u64(5);
        enc.put_u64(2);
        let img = decode_checkpoint(&enc.into_vec()).unwrap();
        assert_eq!(img.expected_seq, vec![((9, 5), 2)]);
        assert!(img.ack_floors.is_empty());
        assert!(img.dedup.is_empty());
    }

    #[test]
    fn bad_magics_are_rejected() {
        assert!(matches!(
            decode_checkpoint(&0xDEAD_BEEFu32.to_be_bytes()),
            Err(RoverError::Wire(_))
        ));
        let mut enc = Encoder::new();
        enc.put_u32(ROV1_MAGIC);
        enc.put_u32(0);
        enc.put_u32(0);
        enc.put_u32(0x524F_5639); // bogus extension magic
        assert!(matches!(
            decode_checkpoint(&enc.into_vec()),
            Err(RoverError::Wire(_))
        ));
    }

    #[test]
    fn hostile_counts_cannot_reserve_unbounded_memory() {
        // Fuzz finding: a header declaring u32::MAX objects used to
        // feed Vec::with_capacity directly — a 4-billion-slot reserve
        // from a 12-byte image. Now it errors on the missing elements
        // after at most PREALLOC_CAP slots of reserve.
        let mut enc = Encoder::new();
        enc.put_u32(ROV1_MAGIC);
        enc.put_u32(u32::MAX);
        assert!(decode_checkpoint(&enc.into_vec()).is_err());
    }

    #[test]
    fn truncated_images_are_rejected_whole() {
        let bytes = encode_checkpoint(&sample());
        for cut in [1, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_checkpoint(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode_checkpoint(&sample());
        bytes.push(0);
        assert!(decode_checkpoint(&bytes).is_err());
    }
}
