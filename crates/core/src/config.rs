//! Client and server configuration: cost models and policies.

use rover_log::FlushReceipt;
use rover_net::SchedMode;
use rover_script::Budget;
use rover_sim::{CpuModel, SimDuration};
use rover_wire::HostId;

/// Stable-storage cost model: how long a log flush takes.
///
/// The paper's prototype wrote its operation log to the ThinkPad's local
/// disk with a synchronous flush on every QRPC ("the flush is on the
/// critical path for message sending", §5.2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StorageModel {
    /// Fixed cost of one synchronous flush (seek + rotation).
    pub sync_latency: SimDuration,
    /// Additional cost per KiB written.
    pub per_kib: SimDuration,
}

impl StorageModel {
    /// A 1995 laptop IDE disk: ~15 ms per synchronous write.
    pub const LAPTOP_DISK_1995: StorageModel = StorageModel {
        sync_latency: SimDuration::from_millis(15),
        per_kib: SimDuration::from_micros(700),
    };

    /// Flash RAM-class stable storage (the paper's "efficient
    /// techniques" future work; A1 ablation arm).
    pub const FLASH_RAM: StorageModel = StorageModel {
        sync_latency: SimDuration::from_micros(300),
        per_kib: SimDuration::from_micros(50),
    };

    /// A 1995 workstation SCSI disk: faster seeks than the laptop IDE
    /// drive, used for the server's write-ahead commit log.
    pub const SERVER_DISK_1995: StorageModel = StorageModel {
        sync_latency: SimDuration::from_millis(8),
        per_kib: SimDuration::from_micros(400),
    };

    /// Free stable storage (the "no log cost" ablation bound).
    pub const FREE: StorageModel = StorageModel {
        sync_latency: SimDuration::ZERO,
        per_kib: SimDuration::ZERO,
    };

    /// Returns the virtual time one flush receipt costs.
    pub fn flush_cost(&self, receipt: FlushReceipt) -> SimDuration {
        if !receipt.synced {
            return SimDuration::ZERO;
        }
        let kib = receipt.bytes.div_ceil(1024) as u64;
        self.sync_latency + SimDuration::from_micros(self.per_kib.as_micros() * kib)
    }
}

/// When the client forces QRPC log records to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LogPolicy {
    /// Flush on every QRPC (the paper's prototype).
    PerOperation,
    /// Group commit: flush when `n` records have accumulated or after
    /// `timeout` since the first unflushed record, whichever is first.
    GroupCommit {
        /// Records per group.
        n: usize,
        /// Maximum time a record may sit unflushed.
        timeout: SimDuration,
    },
    /// No stable log at all (ablation lower bound: queued requests do
    /// not survive a crash).
    None,
}

/// Client-side configuration.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// This client's host id on the network.
    pub host: HostId,
    /// The default home server (authorities not listed in
    /// `authorities` route here).
    pub server: HostId,
    /// Per-URN-authority home servers: "every object has a home
    /// server" (paper §2), and different authorities may live on
    /// different hosts.
    pub authorities: std::collections::HashMap<String, HostId>,
    /// Optional shard routing table: when set, every QRPC routes to
    /// the shard owning its URN (hash of the name, with optional
    /// prefix pins). Checked before `authorities`/`server`; `None`
    /// keeps the classic single-home-server routing.
    pub shards: Option<crate::ShardMap>,
    /// CPU cost model for marshalling and RDO execution.
    pub cpu: CpuModel,
    /// Stable-storage cost model for the QRPC log.
    pub storage: StorageModel,
    /// Log flush policy.
    pub log_policy: LogPolicy,
    /// Compress log records (A2 ablation).
    pub log_compress: bool,
    /// Object-cache capacity in bytes.
    pub cache_capacity: usize,
    /// Network-scheduler queue discipline.
    pub sched_mode: SchedMode,
    /// Retransmission probe interval for outstanding QRPCs (the
    /// *initial* interval; see `rto_backoff`).
    pub rto: SimDuration,
    /// Multiplier applied to a request's probe interval after each
    /// retransmission (exponential backoff; `1.0` = fixed interval).
    pub rto_backoff: f64,
    /// Upper bound the backed-off probe interval never exceeds.
    pub rto_max: SimDuration,
    /// Random jitter fraction added to each probe interval: the actual
    /// delay is `interval * (1 + jitter * u)` with `u` uniform in
    /// `[0, 1)`. `0.0` draws no randomness at all (fully deterministic
    /// probe timing, the default).
    pub rto_jitter: f64,
    /// Maximum retransmissions per queued QRPC before the client gives
    /// up and resolves the promise with [`rover_wire::OpStatus::Unreachable`].
    /// `None` retries forever (the paper's behaviour).
    pub retry_budget: Option<u32>,
    /// Execution budget for RDO methods run on this client.
    pub budget: Budget,
    /// Authentication token presented with every QRPC (0 = anonymous).
    pub auth_token: u64,
    /// Transport fragmentation MTU in payload bytes (`usize::MAX`
    /// disables fragmentation; A6 ablation).
    pub mtu: usize,
}

impl ClientConfig {
    /// The paper's mobile-client configuration: ThinkPad CPU, laptop
    /// disk, per-operation flush, priority scheduling.
    pub fn thinkpad(host: HostId, server: HostId) -> ClientConfig {
        ClientConfig {
            host,
            server,
            authorities: std::collections::HashMap::new(),
            shards: None,
            cpu: CpuModel::THINKPAD_701C,
            storage: StorageModel::LAPTOP_DISK_1995,
            log_policy: LogPolicy::PerOperation,
            log_compress: false,
            cache_capacity: 16 << 20,
            sched_mode: SchedMode::Priority,
            rto: SimDuration::from_secs(120),
            rto_backoff: 2.0,
            rto_max: SimDuration::from_secs(1200),
            rto_jitter: 0.0,
            retry_budget: None,
            budget: Budget::default(),
            auth_token: 0,
            mtu: rover_net::DEFAULT_MTU,
        }
    }
}

/// When the server makes executed commits durable and schedules their
/// replies.
///
/// The paper lists group commit as not-implemented future work (§5.2);
/// the per-operation policy reproduces the prototype's one-flush-per-
/// QRPC critical path, and [`CommitPolicy::Group`] is the amortized
/// engine: executed requests stage their commit records into a pending
/// batch, one flush commits the whole group as a *single* WAL record,
/// and only then are the group's replies scheduled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitPolicy {
    /// One synchronous WAL flush per executed QRPC (the paper's
    /// prototype; the default).
    PerOperation,
    /// Group commit: flush the pending batch when `max_batch` commits
    /// have staged or `window` after the first one staged, whichever
    /// comes first.
    Group {
        /// Commits per group before a size-triggered flush.
        max_batch: usize,
        /// Maximum time the oldest staged commit may wait unflushed.
        window: SimDuration,
    },
}

impl CommitPolicy {
    /// True when this policy batches commits.
    pub fn is_group(&self) -> bool {
        matches!(self, CommitPolicy::Group { .. })
    }
}

/// Server-side configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// This server's host id.
    pub host: HostId,
    /// CPU cost model (stationary workstation).
    pub cpu: CpuModel,
    /// Execution budget for RDO methods and resolvers run here.
    pub budget: Budget,
    /// Maximum retained (client, request) → reply dedup entries.
    pub dedup_capacity: usize,
    /// Reply-scheduler queue discipline (per client).
    pub sched_mode: SchedMode,
    /// Send cache-invalidation callbacks to importers when another
    /// client commits a new version (paper §2: "server callbacks").
    pub callbacks: bool,
    /// Transport fragmentation MTU for replies (`usize::MAX` disables).
    pub mtu: usize,
    /// Stable-storage cost model for the write-ahead commit log; only
    /// charged when a log is attached ([`crate::Server::attach_wal`]).
    pub storage: StorageModel,
    /// Commits between write-ahead-log checkpoints: after this many
    /// commit records, the server snapshots its durable state into the
    /// log and compacts everything older. `0` disables automatic
    /// checkpoints (the log grows until compacted explicitly).
    pub checkpoint_every: usize,
    /// Commit/flush/reply policy for the write-ahead log; only
    /// meaningful when a log is attached.
    pub commit: CommitPolicy,
    /// Hot-set replication factor K: each epoch the shard publishes its
    /// K hottest home objects to its federation peers as volatile,
    /// version-stamped read replicas. `0` (the default) disables the
    /// load-balancing plane entirely — no tracker, no replica frames,
    /// byte-identical to the pre-replication server.
    pub replicate_hot: usize,
}

impl ServerConfig {
    /// The paper's stationary-server configuration.
    pub fn workstation(host: HostId) -> ServerConfig {
        ServerConfig {
            host,
            cpu: CpuModel::SERVER_WORKSTATION,
            budget: Budget::default(),
            dedup_capacity: 4096,
            sched_mode: SchedMode::Priority,
            callbacks: false,
            mtu: rover_net::DEFAULT_MTU,
            storage: StorageModel::SERVER_DISK_1995,
            checkpoint_every: 64,
            commit: CommitPolicy::PerOperation,
            replicate_hot: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flush_cost_zero_without_sync() {
        let m = StorageModel::LAPTOP_DISK_1995;
        assert_eq!(
            m.flush_cost(FlushReceipt {
                bytes: 0,
                records: 0,
                synced: false
            }),
            SimDuration::ZERO
        );
    }

    #[test]
    fn flush_cost_scales_with_bytes() {
        let m = StorageModel::LAPTOP_DISK_1995;
        let small = m.flush_cost(FlushReceipt {
            bytes: 100,
            records: 1,
            synced: true,
        });
        let big = m.flush_cost(FlushReceipt {
            bytes: 100 * 1024,
            records: 1,
            synced: true,
        });
        assert!(small >= m.sync_latency);
        assert!(big > small);
    }

    #[test]
    fn flash_is_much_faster_than_disk() {
        let r = FlushReceipt {
            bytes: 200,
            records: 1,
            synced: true,
        };
        assert!(
            StorageModel::LAPTOP_DISK_1995.flush_cost(r).as_micros()
                > 10 * StorageModel::FLASH_RAM.flush_cost(r).as_micros()
        );
    }
}
