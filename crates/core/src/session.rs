//! Application sessions and Bayou-style session guarantees.
//!
//! Rover "borrows the notions of tentative data [and] session
//! guarantees … from the Bayou project" (paper §7). A session scopes an
//! application's consistency expectations over weakly consistent
//! replicated objects; each of the four classic guarantees can be
//! enabled independently:
//!
//! - **Read Your Writes** — a read must reflect the session's own
//!   earlier writes. Enforced by serving the *tentative* cached copy
//!   (which replays the session's pending exports) whenever the session
//!   has written the object.
//! - **Monotonic Reads** — successive reads never go backwards. A cached
//!   copy older than the session's read vector forces a fresh import.
//! - **Monotonic Writes** / **Writes Follow Reads** — write ordering,
//!   enforced by per-session sequence numbers that the home server
//!   admits strictly in order.

use std::collections::HashMap;

use rover_wire::{HostId, SessionId, Version};

use crate::urn::Urn;

/// Which session guarantees are enforced.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Guarantees {
    /// Read Your Writes.
    pub ryw: bool,
    /// Monotonic Reads.
    pub mr: bool,
    /// Monotonic Writes (implies ordered admission at the server).
    pub mw: bool,
    /// Writes Follow Reads.
    pub wfr: bool,
}

impl Guarantees {
    /// No guarantees: the weakest (and cheapest) session.
    pub const NONE: Guarantees = Guarantees {
        ryw: false,
        mr: false,
        mw: false,
        wfr: false,
    };

    /// All four guarantees.
    pub const ALL: Guarantees = Guarantees {
        ryw: true,
        mr: true,
        mw: true,
        wfr: true,
    };

    /// Returns whether exports need per-session ordering at the server.
    pub fn ordered_writes(&self) -> bool {
        self.mw || self.wfr
    }
}

/// One application session at a client.
#[derive(Debug)]
pub struct Session {
    /// Session identifier (appears in every QRPC it issues).
    pub id: SessionId,
    /// Enforced guarantees.
    pub guarantees: Guarantees,
    /// Whether imports may be satisfied by tentative cached data.
    pub accept_tentative: bool,
    /// Highest version read per object (Monotonic Reads floor).
    pub read_vector: HashMap<Urn, Version>,
    /// Objects this session has exported updates to, with the count of
    /// writes still pending commit (Read-Your-Writes trigger).
    pub pending_writes: HashMap<Urn, usize>,
    /// Next export sequence number *per home server*: write ordering is
    /// enforced by each server independently, and a single counter
    /// across servers would make one server wait forever for sequence
    /// numbers that went elsewhere.
    pub next_write_seq: HashMap<u32, u64>,
}

impl Session {
    /// Creates a session.
    pub fn new(id: SessionId, guarantees: Guarantees, accept_tentative: bool) -> Session {
        Session {
            id,
            guarantees,
            accept_tentative,
            read_vector: HashMap::new(),
            pending_writes: HashMap::new(),
            next_write_seq: HashMap::new(),
        }
    }

    /// Records a completed read of `urn` at `version`.
    pub fn note_read(&mut self, urn: &Urn, version: Version) {
        let slot = self.read_vector.entry(urn.clone()).or_insert(Version(0));
        if version > *slot {
            *slot = version;
        }
    }

    /// Records an issued (pending) write destined for `server`; returns
    /// its per-server session sequence.
    pub fn note_write_issued(&mut self, urn: &Urn, server: HostId) -> u64 {
        *self.pending_writes.entry(urn.clone()).or_insert(0) += 1;
        let slot = self.next_write_seq.entry(server.0).or_insert(1);
        let seq = *slot;
        *slot += 1;
        seq
    }

    /// Draws the next ordered-write sequence for `server` *without*
    /// touching the pending-write count — used when the QRPC engine
    /// re-issues an already-pending write to a different shard after a
    /// migration redirect (the write is still the same logical
    /// operation; only its destination's sequence space changed).
    pub fn next_seq_for(&mut self, server: HostId) -> u64 {
        let slot = self.next_write_seq.entry(server.0).or_insert(1);
        let seq = *slot;
        *slot += 1;
        seq
    }

    /// The session's Monotonic-Reads floor for `urn` (0 = never read).
    pub fn read_floor(&self, urn: &Urn) -> Version {
        self.read_vector.get(urn).copied().unwrap_or(Version(0))
    }

    /// Records a write completing (committed, resolved, or rejected).
    pub fn note_write_done(&mut self, urn: &Urn, committed_version: Version) {
        if let Some(n) = self.pending_writes.get_mut(urn) {
            *n -= 1;
            if *n == 0 {
                self.pending_writes.remove(urn);
            }
        }
        // A session's own committed write is also a read floor under MR:
        // seeing older state later would un-happen the write.
        if committed_version > Version(0) {
            self.note_read(urn, committed_version);
        }
    }

    /// Whether a cached copy at `version` may satisfy a read under
    /// Monotonic Reads.
    pub fn read_admissible(&self, urn: &Urn, version: Version) -> bool {
        if !self.guarantees.mr {
            return true;
        }
        version >= self.read_vector.get(urn).copied().unwrap_or(Version(0))
    }

    /// Whether Read-Your-Writes requires the tentative copy for `urn`.
    pub fn needs_own_writes(&self, urn: &Urn) -> bool {
        self.guarantees.ryw && self.pending_writes.contains_key(urn)
    }

    /// Iterates the session's read floors (highest version observed per
    /// object). Cross-shard writes carry the subset homed on their
    /// destination shard as the writes-follow-reads read-vector.
    pub fn reads(&self) -> impl Iterator<Item = (&Urn, Version)> {
        self.read_vector.iter().map(|(u, v)| (u, *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn urn(p: &str) -> Urn {
        Urn::parse(&format!("urn:rover:t/{p}")).unwrap()
    }

    #[test]
    fn read_vector_is_monotone() {
        let mut s = Session::new(SessionId(1), Guarantees::ALL, true);
        s.note_read(&urn("a"), Version(5));
        s.note_read(&urn("a"), Version(3));
        assert!(s.read_admissible(&urn("a"), Version(5)));
        assert!(!s.read_admissible(&urn("a"), Version(4)));
        assert!(s.read_admissible(&urn("b"), Version(0)));
    }

    #[test]
    fn mr_disabled_admits_anything() {
        let mut s = Session::new(SessionId(1), Guarantees::NONE, true);
        s.note_read(&urn("a"), Version(9));
        assert!(s.read_admissible(&urn("a"), Version(1)));
    }

    #[test]
    fn ryw_triggers_only_with_pending_writes() {
        let mut s = Session::new(SessionId(1), Guarantees::ALL, true);
        assert!(!s.needs_own_writes(&urn("a")));
        let seq1 = s.note_write_issued(&urn("a"), HostId(9));
        let seq2 = s.note_write_issued(&urn("a"), HostId(9));
        assert_eq!((seq1, seq2), (1, 2));
        // A different server gets its own sequence space.
        assert_eq!(s.note_write_issued(&urn("b"), HostId(8)), 1);
        assert!(s.needs_own_writes(&urn("a")));
        s.note_write_done(&urn("a"), Version(7));
        assert!(s.needs_own_writes(&urn("a")));
        s.note_write_done(&urn("a"), Version(8));
        assert!(!s.needs_own_writes(&urn("a")));
        // Committed writes raised the read floor.
        assert!(!s.read_admissible(&urn("a"), Version(7)));
        assert!(s.read_admissible(&urn("a"), Version(8)));
    }

    #[test]
    fn ordered_writes_flag() {
        assert!(Guarantees::ALL.ordered_writes());
        assert!(!Guarantees::NONE.ordered_writes());
        assert!(Guarantees {
            mw: true,
            ..Guarantees::NONE
        }
        .ordered_writes());
        assert!(Guarantees {
            wfr: true,
            ..Guarantees::NONE
        }
        .ordered_writes());
    }
}
