//! Dynamic shard rebalancing: write offload for persistently hot
//! prefixes.
//!
//! Read replicas ([`crate::HotSet`] + the replica directory in
//! [`crate::ShardMap`]) spread *read* load, but a write-hot object still
//! funnels every commit through its home shard. The [`Rebalancer`]
//! closes that gap: each tick it compares per-shard commit loads over
//! the last window, and when one shard is persistently hotter than the
//! mean it picks that shard's hottest home object and proposes moving
//! it to the least-loaded shard. The caller (the bench harness, or an
//! operator plane in a real deployment) then performs the move —
//! `Server::migrate_out` on the source, `Server::install_migrated` on
//! the target, `ShardMap::migrate_prefix` to re-route — all gated by
//! the existing writes-follow-reads hold/drain machinery so
//! exactly-once and WAL ordering survive the migration.
//!
//! Decisions are a pure function of the load counters handed in, so a
//! deterministic soak makes the same migrations every run.

/// One proposed migration: move the object named by `urn` from shard
/// `from` to shard `to`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Migration {
    /// Exact URN to re-home (installed as a migration pin, so the pin
    /// matches only this object).
    pub urn: String,
    /// Source shard index (the object's current home).
    pub from: usize,
    /// Target shard index (the least-loaded shard last window).
    pub to: usize,
}

/// Periodic commit-load rebalancer (see module docs).
#[derive(Debug)]
pub struct Rebalancer {
    /// Cumulative per-shard commit loads at the previous tick; the
    /// decision looks at the *delta* since then.
    last_loads: Vec<u64>,
    /// A shard triggers a migration when its window load exceeds the
    /// mean by this factor.
    threshold: f64,
    /// URN → tick at which it was last migrated. An object is not
    /// re-moved within [`Rebalancer::MOVE_COOLDOWN`] ticks (ping-pong
    /// churns the WAL), but *can* move again afterwards — a target
    /// that ended up overloaded sheds what it was handed.
    moved: std::collections::HashMap<String, u64>,
    /// Shard index → tick at which it last received a migration. A
    /// freshly pinned object's traffic takes a window or two to show
    /// up on the target's commit counter; until then the target still
    /// looks cold, and without a cooldown every early decision stacks
    /// onto the same lagging shard.
    targeted: Vec<u64>,
    /// Decision counter (drives both cooldowns).
    ticks: u64,
    /// Migrations proposed over the rebalancer's lifetime.
    proposed: u64,
}

impl Rebalancer {
    /// Default trigger: a shard 15% above the mean window load is
    /// imbalanced enough to shed its hottest object.
    pub const DEFAULT_THRESHOLD: f64 = 1.15;

    /// Minimum mean per-shard window load before any decision fires.
    /// Early windows carry a handful of commits; acting on that noise
    /// produces migrations the controller then has to undo.
    pub const MIN_WINDOW_MEAN: u64 = 32;

    /// Ticks a shard is ineligible as a migration *target* after
    /// receiving one (covers the control lag between pinning an object
    /// and its commits appearing on the target's counter).
    pub const TARGET_COOLDOWN: u64 = 2;

    /// Ticks an object is ineligible to move again after a migration.
    pub const MOVE_COOLDOWN: u64 = 8;

    /// Creates a rebalancer over `shards` shards with the default
    /// trigger threshold.
    pub fn new(shards: usize) -> Rebalancer {
        Rebalancer::with_threshold(shards, Rebalancer::DEFAULT_THRESHOLD)
    }

    /// Creates a rebalancer with an explicit trigger threshold
    /// (`window_load > threshold * mean`).
    pub fn with_threshold(shards: usize, threshold: f64) -> Rebalancer {
        Rebalancer {
            last_loads: vec![0; shards],
            threshold,
            moved: std::collections::HashMap::new(),
            targeted: vec![0; shards],
            ticks: 0,
            proposed: 0,
        }
    }

    /// Migrations proposed so far.
    pub fn proposed(&self) -> u64 {
        self.proposed
    }

    /// One rebalancing decision. `loads` is the *cumulative* per-shard
    /// commit counter (e.g. [`crate::ShardMap::commit_loads`]);
    /// `hottest` gives each shard's current hot set, hottest first
    /// (e.g. [`crate::HotSet::top`]), restricted to objects actually
    /// homed there. Returns the migration to perform, or `None` when
    /// the window was balanced, too small to trust, or the hot shard
    /// has nothing eligible to shed.
    pub fn tick(&mut self, loads: &[u64], hottest: &[Vec<(String, u64)>]) -> Option<Migration> {
        let n = self.last_loads.len();
        debug_assert_eq!(loads.len(), n, "shard count is fixed at construction");
        let window: Vec<u64> = (0..n)
            .map(|i| loads[i].saturating_sub(self.last_loads[i]))
            .collect();
        self.last_loads.copy_from_slice(loads);
        self.ticks += 1;

        let total: u64 = window.iter().sum();
        if n < 2 || total < Rebalancer::MIN_WINDOW_MEAN * n as u64 {
            return None;
        }
        let mean = total as f64 / n as f64;
        // Hottest shard; ties break to the lowest index (determinism).
        let from = (0..n).max_by_key(|&i| (window[i], std::cmp::Reverse(i)))?;
        if (window[from] as f64) <= self.threshold * mean {
            return None;
        }
        // Coldest shard still accepting (not the source, not inside
        // the target cooldown); ties to the lowest index.
        let to = (0..n)
            .filter(|&i| {
                i != from
                    && (self.targeted[i] == 0
                        || self.ticks.saturating_sub(self.targeted[i])
                            >= Rebalancer::TARGET_COOLDOWN)
            })
            .min_by_key(|&i| (window[i], i))?;
        // Hottest object homed on the hot shard that is out of its
        // move cooldown.
        let urn = hottest
            .get(from)?
            .iter()
            .map(|(u, _)| u)
            .find(|u| {
                self.moved
                    .get(*u)
                    .is_none_or(|&t| self.ticks.saturating_sub(t) >= Rebalancer::MOVE_COOLDOWN)
            })?
            .clone();
        self.moved.insert(urn.clone(), self.ticks);
        self.targeted[to] = self.ticks;
        self.proposed += 1;
        Some(Migration { urn, from, to })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot(urns: &[&str]) -> Vec<(String, u64)> {
        urns.iter()
            .enumerate()
            .map(|(i, u)| (u.to_string(), 100 - i as u64))
            .collect()
    }

    #[test]
    fn balanced_load_proposes_nothing() {
        let mut r = Rebalancer::new(4);
        let hotsets = vec![hot(&["a"]), hot(&["b"]), hot(&["c"]), hot(&["d"])];
        assert_eq!(r.tick(&[100, 100, 100, 100], &hotsets), None);
        assert_eq!(r.proposed(), 0);
    }

    #[test]
    fn skewed_load_moves_hottest_object_to_coldest_shard() {
        let mut r = Rebalancer::new(4);
        let hotsets = vec![
            hot(&["urn:rover:t/hot", "urn:rover:t/warm"]),
            hot(&[]),
            hot(&[]),
            hot(&[]),
        ];
        let m = r.tick(&[400, 100, 50, 100], &hotsets).expect("imbalanced");
        assert_eq!(
            m,
            Migration {
                urn: "urn:rover:t/hot".into(),
                from: 0,
                to: 2,
            }
        );
        assert_eq!(r.proposed(), 1);
    }

    #[test]
    fn ticks_use_window_deltas_not_cumulative_loads() {
        let mut r = Rebalancer::new(2);
        let hotsets = vec![hot(&["urn:rover:t/x"]), hot(&[])];
        // First window: shard 0 hot.
        assert!(r.tick(&[300, 100], &hotsets).is_some());
        // Second window: both advanced equally — balanced, despite the
        // cumulative counters still being skewed.
        assert_eq!(r.tick(&[400, 200], &hotsets), None);
    }

    #[test]
    fn an_object_is_not_remigrated_within_the_move_cooldown() {
        let mut r = Rebalancer::new(3);
        let hotsets = vec![hot(&["urn:rover:t/only"]), hot(&[]), hot(&[])];
        let m = r.tick(&[300, 10, 10], &hotsets).expect("imbalanced");
        assert_eq!(m.to, 1);
        // Still hot and shard 2 is an eligible target, but the only
        // candidate is inside its move cooldown.
        assert_eq!(r.tick(&[600, 20, 20], &hotsets), None);
    }

    #[test]
    fn a_stacked_object_moves_again_after_the_cooldown() {
        let mut r = Rebalancer::new(3);
        // Shard 1 is hot and its only hot object was just migrated in.
        let hotsets = vec![hot(&[]), hot(&["urn:rover:t/hot"]), hot(&[])];
        let idle = vec![hot(&[]), hot(&[]), hot(&[])];
        let mut loads = vec![100u64, 100, 100];
        // Burn through the move cooldown with balanced windows.
        loads[1] += 400; // make shard 1 hot once to record the move
        loads[0] += 100;
        loads[2] += 100;
        let m = r.tick(&loads, &hotsets).expect("imbalanced");
        assert_eq!(m.urn, "urn:rover:t/hot");
        for _ in 0..Rebalancer::MOVE_COOLDOWN {
            for l in loads.iter_mut() {
                *l += 100;
            }
            assert_eq!(r.tick(&loads, &idle), None);
        }
        // Cooldown over: the same object is eligible again.
        loads[1] += 400;
        loads[0] += 100;
        loads[2] += 100;
        assert!(r.tick(&loads, &hotsets).is_some());
    }

    #[test]
    fn a_fresh_target_is_skipped_until_its_load_catches_up() {
        let mut r = Rebalancer::new(3);
        let hotsets = vec![
            hot(&["urn:rover:t/a", "urn:rover:t/b", "urn:rover:t/c"]),
            hot(&[]),
            hot(&[]),
        ];
        // Shard 1 is coldest: first migration targets it.
        let m = r.tick(&[400, 50, 100], &hotsets).expect("imbalanced");
        assert_eq!(m.to, 1);
        // Next tick shard 1 still *looks* coldest (control lag), but it
        // just received a migration — the next one goes to shard 2.
        let m = r.tick(&[800, 100, 200], &hotsets).expect("imbalanced");
        assert_eq!(m.to, 2);
    }

    #[test]
    fn small_windows_are_ignored() {
        let mut r = Rebalancer::new(2);
        let hotsets = vec![hot(&["urn:rover:t/x"]), hot(&[])];
        // Badly skewed, but below the volume floor: no decision.
        assert_eq!(r.tick(&[30, 1], &hotsets), None);
        assert_eq!(r.proposed(), 0);
    }

    #[test]
    fn empty_window_is_a_no_op() {
        let mut r = Rebalancer::new(3);
        let hotsets = vec![hot(&["a"]), hot(&[]), hot(&[])];
        assert_eq!(r.tick(&[0, 0, 0], &hotsets), None);
    }
}
