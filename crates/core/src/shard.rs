//! Shard routing: partitioning the URN space across N home servers.
//!
//! Rover's architecture gives every object one home server (paper §2);
//! the federation layer scales that out by partitioning the URN
//! namespace across N server *shards*. Routing must be a pure function
//! of the URN string so that every client — and every run of the
//! deterministic soaks — computes the same assignment: the map hashes
//! the full URN with FNV-1a and takes it modulo the shard count.
//! Operators can additionally *pin* a URN prefix to a specific shard
//! (e.g. keep one authority's whole namespace on one machine); pins are
//! checked first, longest prefix wins.

use rover_wire::HostId;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A deterministic URN → shard routing table.
///
/// # Examples
///
/// ```
/// use rover_core::ShardMap;
/// use rover_wire::HostId;
///
/// let map = ShardMap::new(vec![HostId(1), HostId(2), HostId(3)]);
/// let s = map.shard_for("urn:rover:mail/inbox/42");
/// assert!(s < 3);
/// // Same URN, same shard — routing is a pure function of the name.
/// assert_eq!(s, map.shard_for("urn:rover:mail/inbox/42"));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    /// Host ids of the shard servers, in shard-index order.
    hosts: Vec<HostId>,
    /// Prefix pins: `(urn_prefix, shard_index)`, checked before the
    /// hash; the longest matching prefix wins.
    pins: Vec<(String, usize)>,
}

impl ShardMap {
    /// Builds a map over `hosts` (one per shard) with no pins.
    ///
    /// # Panics
    ///
    /// Panics if `hosts` is empty.
    pub fn new(hosts: Vec<HostId>) -> ShardMap {
        assert!(!hosts.is_empty(), "a ShardMap needs at least one shard");
        ShardMap {
            hosts,
            pins: Vec::new(),
        }
    }

    /// Pins every URN starting with `prefix` to shard `shard`
    /// (an index into the host list, not a `HostId`).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn pin_prefix(mut self, prefix: &str, shard: usize) -> ShardMap {
        assert!(shard < self.hosts.len(), "pin to nonexistent shard");
        self.pins.push((prefix.to_string(), shard));
        // Longest-prefix-first so `shard_for` can take the first match.
        self.pins
            .sort_by(|a, b| b.0.len().cmp(&a.0.len()).then(a.0.cmp(&b.0)));
        self
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// True when the map has a single shard (routing is trivial).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The shard index owning `urn`.
    pub fn shard_for(&self, urn: &str) -> usize {
        for (prefix, shard) in &self.pins {
            if urn.starts_with(prefix.as_str()) {
                return *shard;
            }
        }
        (fnv1a(urn.as_bytes()) % self.hosts.len() as u64) as usize
    }

    /// The host owning `urn`.
    pub fn host_for(&self, urn: &str) -> HostId {
        self.hosts[self.shard_for(urn)]
    }

    /// The host of shard `idx`.
    pub fn host(&self, idx: usize) -> HostId {
        self.hosts[idx]
    }

    /// All shard hosts in shard-index order.
    pub fn hosts(&self) -> &[HostId] {
        &self.hosts
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hosts(n: u32) -> Vec<HostId> {
        (1..=n).map(HostId).collect()
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let map = ShardMap::new(hosts(4));
        for i in 0..256 {
            let urn = format!("urn:rover:scale/obj{i}");
            let s = map.shard_for(&urn);
            assert!(s < 4);
            assert_eq!(s, map.shard_for(&urn), "same urn, same shard");
            assert_eq!(map.host_for(&urn), map.host(s));
        }
    }

    #[test]
    fn single_shard_routes_everything_to_it() {
        let map = ShardMap::new(vec![HostId(9)]);
        assert_eq!(map.len(), 1);
        assert_eq!(map.shard_for("urn:rover:a/b"), 0);
        assert_eq!(map.host_for("urn:rover:zzz"), HostId(9));
    }

    #[test]
    fn hash_spreads_across_shards() {
        let map = ShardMap::new(hosts(4));
        let mut seen = [0usize; 4];
        for i in 0..256 {
            seen[map.shard_for(&format!("urn:rover:scale/obj{i}"))] += 1;
        }
        for (s, n) in seen.iter().enumerate() {
            assert!(*n > 0, "shard {s} got no objects");
        }
    }

    #[test]
    fn pins_override_hash_longest_first() {
        let map = ShardMap::new(hosts(4))
            .pin_prefix("urn:rover:mail", 1)
            .pin_prefix("urn:rover:mail/archive", 3);
        assert_eq!(map.shard_for("urn:rover:mail/inbox/1"), 1);
        assert_eq!(map.shard_for("urn:rover:mail/archive/1995"), 3);
        // Unpinned names still hash.
        let s = map.shard_for("urn:rover:cal/today");
        assert!(s < 4);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn empty_map_rejected() {
        ShardMap::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "nonexistent shard")]
    fn out_of_range_pin_rejected() {
        let _ = ShardMap::new(hosts(2)).pin_prefix("urn:rover:x", 5);
    }
}
