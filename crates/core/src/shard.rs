//! Shard routing: partitioning the URN space across N home servers.
//!
//! Rover's architecture gives every object one home server (paper §2);
//! the federation layer scales that out by partitioning the URN
//! namespace across N server *shards*. Routing must be a pure function
//! of the URN string so that every client — and every run of the
//! deterministic soaks — computes the same assignment: the map hashes
//! the full URN with FNV-1a and takes it modulo the shard count.
//! Operators can additionally *pin* a URN prefix to a specific shard
//! (e.g. keep one authority's whole namespace on one machine); pins are
//! checked first, longest prefix wins.
//!
//! On top of the static assignment sits an optional *dynamic* routing
//! plane ([`DynamicRouting`], enabled by [`ShardMap::with_dynamic`])
//! shared by every clone of the map — in the simulator one `Rc` stands
//! in for the gossiped routing directory a real deployment would run:
//!
//! - **migration pins**: the rebalancer re-homes persistently hot
//!   prefixes by installing a dynamic pin, checked before the static
//!   table, so writes follow the object to its new home;
//! - **replica directory**: which shards hold a volatile read replica
//!   of a hot object, at which version — [`ShardMap::read_shard_for`]
//!   routes an import to the least-loaded holder whose version
//!   satisfies the session's read floor, and to the home shard
//!   otherwise;
//! - **load counters**: per-shard routed-read and committed-write
//!   tallies feeding both the least-loaded choice and the rebalancer.
//!
//! With no dynamic plane attached every method degrades to the pure
//! static function, byte-identical to the pre-replication router.

use std::cell::RefCell;
use std::rc::Rc;

use rover_wire::HostId;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Why a [`ShardMap`] construction or pin was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardMapError {
    /// The host list was empty — a map needs at least one shard.
    EmptyHosts,
    /// A pin's prefix was the empty string, which would capture every
    /// URN and silently disable hash routing.
    EmptyPrefix,
    /// A pin duplicates an existing pin's prefix: two equal-length
    /// overlapping pins would make "longest prefix wins" ambiguous.
    DuplicatePrefix(String),
    /// A pin named a shard index outside the host list.
    ShardOutOfRange {
        /// The offending shard index.
        shard: usize,
        /// Number of shards in the map.
        shards: usize,
    },
}

impl std::fmt::Display for ShardMapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardMapError::EmptyHosts => write!(f, "a ShardMap needs at least one shard"),
            ShardMapError::EmptyPrefix => write!(f, "empty pin prefix would capture every URN"),
            ShardMapError::DuplicatePrefix(p) => {
                write!(f, "duplicate pin prefix {p:?}")
            }
            ShardMapError::ShardOutOfRange { shard, shards } => {
                write!(f, "pin to nonexistent shard {shard} (map has {shards})")
            }
        }
    }
}

impl std::error::Error for ShardMapError {}

/// One replica holder: `(shard index, replica version)`.
type Holder = (usize, u64);

/// The shared dynamic routing plane: migration pins, the replica
/// directory, and per-shard load counters. Every clone of a
/// [`ShardMap`] shares one instance (the simulator's stand-in for a
/// gossiped directory service).
#[derive(Debug, Default)]
pub struct DynamicRouting {
    /// Migration pins `(urn_prefix, shard)`, longest-prefix-first;
    /// checked before the static pins and the hash.
    migrations: Vec<(String, usize)>,
    /// Replica directory: URN → holders `(shard, version)`. The home
    /// shard is *not* listed; it always serves.
    replicas: std::collections::HashMap<String, Vec<Holder>>,
    /// Reads routed to each shard (bumped at route time; the
    /// least-loaded choice reads these).
    read_loads: Vec<u64>,
    /// Commits executed by each shard (bumped by the server; the
    /// rebalancer and the imbalance metric read these).
    commit_loads: Vec<u64>,
}

impl DynamicRouting {
    fn new(shards: usize) -> DynamicRouting {
        DynamicRouting {
            migrations: Vec::new(),
            replicas: std::collections::HashMap::new(),
            read_loads: vec![0; shards],
            commit_loads: vec![0; shards],
        }
    }
}

/// A deterministic URN → shard routing table.
///
/// # Examples
///
/// ```
/// use rover_core::ShardMap;
/// use rover_wire::HostId;
///
/// let map = ShardMap::new(vec![HostId(1), HostId(2), HostId(3)]);
/// let s = map.shard_for("urn:rover:mail/inbox/42");
/// assert!(s < 3);
/// // Same URN, same shard — routing is a pure function of the name.
/// assert_eq!(s, map.shard_for("urn:rover:mail/inbox/42"));
/// ```
#[derive(Clone, Debug)]
pub struct ShardMap {
    /// Host ids of the shard servers, in shard-index order.
    hosts: Vec<HostId>,
    /// Prefix pins: `(urn_prefix, shard_index)`, checked before the
    /// hash; the longest matching prefix wins.
    pins: Vec<(String, usize)>,
    /// Optional shared dynamic plane (replication + rebalancing).
    dynamic: Option<Rc<RefCell<DynamicRouting>>>,
}

/// Equality is over the *static* table only: two clones sharing a
/// dynamic plane, or two maps with identical static tables, compare
/// equal regardless of transient replica/migration state.
impl PartialEq for ShardMap {
    fn eq(&self, other: &Self) -> bool {
        self.hosts == other.hosts && self.pins == other.pins
    }
}

impl Eq for ShardMap {}

impl ShardMap {
    /// Builds a map over `hosts` (one per shard) with no pins.
    pub fn try_new(hosts: Vec<HostId>) -> Result<ShardMap, ShardMapError> {
        if hosts.is_empty() {
            return Err(ShardMapError::EmptyHosts);
        }
        Ok(ShardMap {
            hosts,
            pins: Vec::new(),
            dynamic: None,
        })
    }

    /// Builds a map over `hosts` (one per shard) with no pins.
    ///
    /// # Panics
    ///
    /// Panics if `hosts` is empty; [`ShardMap::try_new`] returns the
    /// typed error instead.
    pub fn new(hosts: Vec<HostId>) -> ShardMap {
        ShardMap::try_new(hosts).expect("a ShardMap needs at least one shard")
    }

    /// Pins every URN starting with `prefix` to shard `shard` (an index
    /// into the host list, not a `HostId`). Rejects empty prefixes,
    /// duplicate prefixes (equal-length overlap would make
    /// longest-prefix-wins ambiguous), and out-of-range shard indices.
    pub fn try_pin_prefix(mut self, prefix: &str, shard: usize) -> Result<ShardMap, ShardMapError> {
        if prefix.is_empty() {
            return Err(ShardMapError::EmptyPrefix);
        }
        if shard >= self.hosts.len() {
            return Err(ShardMapError::ShardOutOfRange {
                shard,
                shards: self.hosts.len(),
            });
        }
        if self.pins.iter().any(|(p, _)| p == prefix) {
            return Err(ShardMapError::DuplicatePrefix(prefix.to_string()));
        }
        self.pins.push((prefix.to_string(), shard));
        // Longest-prefix-first so `shard_for` can take the first match.
        self.pins
            .sort_by(|a, b| b.0.len().cmp(&a.0.len()).then(a.0.cmp(&b.0)));
        Ok(self)
    }

    /// Pins every URN starting with `prefix` to shard `shard`.
    ///
    /// # Panics
    ///
    /// Panics on an empty prefix, a duplicate prefix, or an
    /// out-of-range shard; [`ShardMap::try_pin_prefix`] returns the
    /// typed error instead.
    pub fn pin_prefix(self, prefix: &str, shard: usize) -> ShardMap {
        match self.try_pin_prefix(prefix, shard) {
            Ok(map) => map,
            Err(e @ ShardMapError::ShardOutOfRange { .. }) => {
                panic!("pin to nonexistent shard: {e}")
            }
            Err(e) => panic!("invalid shard pin: {e}"),
        }
    }

    /// Attaches a fresh dynamic routing plane (replication +
    /// rebalancing directory). Clones made *after* this call share it.
    pub fn with_dynamic(mut self) -> ShardMap {
        let n = self.hosts.len();
        self.dynamic = Some(Rc::new(RefCell::new(DynamicRouting::new(n))));
        self
    }

    /// Whether a dynamic routing plane is attached.
    pub fn has_dynamic(&self) -> bool {
        self.dynamic.is_some()
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// True when the map has a single shard (routing is trivial).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The shard index owning `urn` (its write home). Migration pins
    /// are honored first, then static pins (longest prefix wins), then
    /// the hash.
    pub fn shard_for(&self, urn: &str) -> usize {
        if let Some(dynamic) = &self.dynamic {
            for (prefix, shard) in &dynamic.borrow().migrations {
                if subtree_match(urn, prefix) {
                    return *shard;
                }
            }
        }
        self.static_shard_for(urn)
    }

    /// The static assignment for `urn`, ignoring migration pins — what
    /// `shard_for` returned before any rebalancing ran.
    pub fn static_shard_for(&self, urn: &str) -> usize {
        for (prefix, shard) in &self.pins {
            if urn.starts_with(prefix.as_str()) {
                return *shard;
            }
        }
        (fnv1a(urn.as_bytes()) % self.hosts.len() as u64) as usize
    }

    /// The host owning `urn`.
    pub fn host_for(&self, urn: &str) -> HostId {
        self.hosts[self.shard_for(urn)]
    }

    /// The host of shard `idx`.
    pub fn host(&self, idx: usize) -> HostId {
        self.hosts[idx]
    }

    /// All shard hosts in shard-index order.
    pub fn hosts(&self) -> &[HostId] {
        &self.hosts
    }

    // ------------------------------------------------------------------
    // Dynamic plane: read routing, replica directory, rebalancing.

    /// Routes a *read* of `urn` whose session requires at least version
    /// `floor`: the least-loaded shard among the home and every replica
    /// holder whose registered version satisfies the floor (ties go to
    /// the home). Bumps the chosen shard's read-load counter. Without a
    /// dynamic plane this is exactly [`ShardMap::shard_for`].
    pub fn read_shard_for(&self, urn: &str, floor: u64) -> usize {
        let home = self.shard_for(urn);
        let Some(dynamic) = &self.dynamic else {
            return home;
        };
        let mut d = dynamic.borrow_mut();
        let mut best = home;
        let mut best_load = d.read_loads[home];
        if let Some(holders) = d.replicas.get(urn) {
            for &(shard, version) in holders {
                if shard != home && version >= floor && d.read_loads[shard] < best_load {
                    best = shard;
                    best_load = d.read_loads[shard];
                }
            }
        }
        d.read_loads[best] += 1;
        best
    }

    /// The host serving a read of `urn` at session floor `floor`.
    pub fn read_host_for(&self, urn: &str, floor: u64) -> HostId {
        self.hosts[self.read_shard_for(urn, floor)]
    }

    /// Registers (or refreshes) shard `holder`'s replica of `urn` at
    /// `version` in the directory. No-op without a dynamic plane.
    pub fn publish_replica(&self, urn: &str, holder: usize, version: u64) {
        if let Some(dynamic) = &self.dynamic {
            let mut d = dynamic.borrow_mut();
            let holders = d.replicas.entry(urn.to_string()).or_default();
            match holders.iter_mut().find(|(s, _)| *s == holder) {
                Some(slot) => slot.1 = slot.1.max(version),
                None => holders.push((holder, version)),
            }
        }
    }

    /// Deregisters shard `holder`'s replica of `urn` — called when the
    /// holder evicts a replica its home stopped refreshing (the one-
    /// epoch staleness bound). No-op without a dynamic plane.
    pub fn retract_replica(&self, urn: &str, holder: usize) {
        if let Some(dynamic) = &self.dynamic {
            let mut d = dynamic.borrow_mut();
            if let Some(holders) = d.replicas.get_mut(urn) {
                holders.retain(|(s, _)| *s != holder);
                if holders.is_empty() {
                    d.replicas.remove(urn);
                }
            }
        }
    }

    /// Deregisters every replica held by shard `holder` — called when
    /// the holder crashes (replicas are volatile). No-op without a
    /// dynamic plane.
    pub fn drop_replicas_of(&self, holder: usize) {
        if let Some(dynamic) = &self.dynamic {
            let mut d = dynamic.borrow_mut();
            d.replicas.retain(|_, holders| {
                holders.retain(|(s, _)| *s != holder);
                !holders.is_empty()
            });
        }
    }

    /// Installs a migration pin: `prefix` itself and every URN in its
    /// `/`-separated subtree now home on `shard`. Checked before the
    /// static table. Unlike static pins, a migration pin never
    /// captures a *sibling* that merely shares a string prefix — the
    /// rebalancer moves exactly one object's store image, so pinning
    /// `…/obj7` must not claim `…/obj70`. No-op without a dynamic
    /// plane.
    pub fn migrate_prefix(&self, prefix: &str, shard: usize) {
        if let Some(dynamic) = &self.dynamic {
            let mut d = dynamic.borrow_mut();
            if let Some(slot) = d.migrations.iter_mut().find(|(p, _)| p == prefix) {
                slot.1 = shard;
            } else {
                d.migrations.push((prefix.to_string(), shard));
                d.migrations
                    .sort_by(|a, b| b.0.len().cmp(&a.0.len()).then(a.0.cmp(&b.0)));
            }
        }
    }

    /// Number of migration pins currently installed.
    pub fn migration_count(&self) -> usize {
        self.dynamic
            .as_ref()
            .map_or(0, |d| d.borrow().migrations.len())
    }

    /// Records one committed write on shard `shard` (feeds the
    /// rebalancer and the load-imbalance metric). No-op without a
    /// dynamic plane.
    pub fn note_commit(&self, shard: usize) {
        if let Some(dynamic) = &self.dynamic {
            dynamic.borrow_mut().commit_loads[shard] += 1;
        }
    }

    /// Per-shard committed-write counters since the map was built.
    pub fn commit_loads(&self) -> Vec<u64> {
        self.dynamic
            .as_ref()
            .map_or_else(Vec::new, |d| d.borrow().commit_loads.clone())
    }

    /// The directory's registered version of shard `holder`'s replica
    /// of `urn`, if any.
    pub fn replica_version(&self, urn: &str, holder: usize) -> Option<u64> {
        let dynamic = self.dynamic.as_ref()?;
        let d = dynamic.borrow();
        d.replicas
            .get(urn)?
            .iter()
            .find(|(s, _)| *s == holder)
            .map(|(_, v)| *v)
    }
}

/// Does a migration pin capture `urn`? The pin claims the exact name
/// and its `/`-separated subtree — never a lexical sibling.
fn subtree_match(urn: &str, pin: &str) -> bool {
    urn.strip_prefix(pin)
        .is_some_and(|rest| rest.is_empty() || rest.starts_with('/'))
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hosts(n: u32) -> Vec<HostId> {
        (1..=n).map(HostId).collect()
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let map = ShardMap::new(hosts(4));
        for i in 0..256 {
            let urn = format!("urn:rover:scale/obj{i}");
            let s = map.shard_for(&urn);
            assert!(s < 4);
            assert_eq!(s, map.shard_for(&urn), "same urn, same shard");
            assert_eq!(map.host_for(&urn), map.host(s));
        }
    }

    #[test]
    fn single_shard_routes_everything_to_it() {
        let map = ShardMap::new(vec![HostId(9)]);
        assert_eq!(map.len(), 1);
        assert_eq!(map.shard_for("urn:rover:a/b"), 0);
        assert_eq!(map.host_for("urn:rover:zzz"), HostId(9));
    }

    #[test]
    fn hash_spreads_across_shards() {
        let map = ShardMap::new(hosts(4));
        let mut seen = [0usize; 4];
        for i in 0..256 {
            seen[map.shard_for(&format!("urn:rover:scale/obj{i}"))] += 1;
        }
        for (s, n) in seen.iter().enumerate() {
            assert!(*n > 0, "shard {s} got no objects");
        }
    }

    #[test]
    fn pins_override_hash_longest_first() {
        let map = ShardMap::new(hosts(4))
            .pin_prefix("urn:rover:mail", 1)
            .pin_prefix("urn:rover:mail/archive", 3);
        assert_eq!(map.shard_for("urn:rover:mail/inbox/1"), 1);
        assert_eq!(map.shard_for("urn:rover:mail/archive/1995"), 3);
        // Unpinned names still hash.
        let s = map.shard_for("urn:rover:cal/today");
        assert!(s < 4);
    }

    #[test]
    fn empty_map_rejected_with_typed_error() {
        assert_eq!(
            ShardMap::try_new(Vec::new()).unwrap_err(),
            ShardMapError::EmptyHosts
        );
    }

    #[test]
    fn empty_prefix_rejected_with_typed_error() {
        assert_eq!(
            ShardMap::new(hosts(2)).try_pin_prefix("", 1).unwrap_err(),
            ShardMapError::EmptyPrefix
        );
    }

    #[test]
    fn duplicate_prefix_rejected_with_typed_error() {
        let err = ShardMap::new(hosts(2))
            .pin_prefix("urn:rover:mail", 0)
            .try_pin_prefix("urn:rover:mail", 1)
            .unwrap_err();
        assert_eq!(err, ShardMapError::DuplicatePrefix("urn:rover:mail".into()));
        // Same length but *different* prefix is fine — no ambiguity.
        let ok = ShardMap::new(hosts(2))
            .pin_prefix("urn:rover:mail", 0)
            .try_pin_prefix("urn:rover:cale", 1);
        assert!(ok.is_ok());
    }

    #[test]
    fn out_of_range_pin_rejected_with_typed_error() {
        assert_eq!(
            ShardMap::new(hosts(2))
                .try_pin_prefix("urn:rover:x", 5)
                .unwrap_err(),
            ShardMapError::ShardOutOfRange {
                shard: 5,
                shards: 2
            }
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn empty_map_panics_in_infallible_constructor() {
        ShardMap::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "nonexistent shard")]
    fn out_of_range_pin_panics_in_infallible_constructor() {
        let _ = ShardMap::new(hosts(2)).pin_prefix("urn:rover:x", 5);
    }

    #[test]
    fn read_routing_prefers_least_loaded_qualified_holder() {
        let map = ShardMap::new(hosts(4)).with_dynamic();
        let urn = "urn:rover:scale/hot";
        let home = map.shard_for(urn);
        // No replicas: reads go home.
        assert_eq!(map.read_shard_for(urn, 0), home);
        // A holder at version 5 serves floors <= 5 once home is busier.
        let holder = (home + 1) % 4;
        map.publish_replica(urn, holder, 5);
        map.note_commit(home);
        let mut served = [0usize; 4];
        for _ in 0..8 {
            served[map.read_shard_for(urn, 3)] += 1;
        }
        assert!(served[holder] > 0, "qualified holder must take reads");
        // A floor above the replica version forces home.
        assert_eq!(map.read_shard_for(urn, 6), home);
        // The holder crashes: directory forgets it, reads go home.
        map.drop_replicas_of(holder);
        assert_eq!(map.read_shard_for(urn, 0), home);
    }

    #[test]
    fn migration_pins_never_capture_lexical_siblings() {
        let map = ShardMap::new(hosts(4)).with_dynamic();
        let urn = "urn:rover:scale/obj7";
        let sibling = "urn:rover:scale/obj70";
        let child = "urn:rover:scale/obj7/sub";
        let sib_home = map.shard_for(sibling);
        let target = (map.shard_for(urn) + 1) % 4;
        map.migrate_prefix(urn, target);
        assert_eq!(map.shard_for(urn), target);
        assert_eq!(map.shard_for(child), target, "subtree follows the pin");
        assert_eq!(
            map.shard_for(sibling),
            sib_home,
            "obj70 must not follow obj7's migration"
        );
    }

    #[test]
    fn migration_pins_rehome_writes_and_clones_share_them() {
        let map = ShardMap::new(hosts(4)).with_dynamic();
        let clone = map.clone();
        let urn = "urn:rover:scale/obj1";
        let home = map.shard_for(urn);
        let target = (home + 2) % 4;
        map.migrate_prefix(urn, target);
        assert_eq!(map.shard_for(urn), target, "pin rehomes the object");
        assert_eq!(clone.shard_for(urn), target, "clones share the plane");
        assert_eq!(map.static_shard_for(urn), home, "static view unchanged");
        assert_eq!(map.migration_count(), 1);
        // Equality ignores dynamic state.
        assert_eq!(map, ShardMap::new(hosts(4)));
    }
}
