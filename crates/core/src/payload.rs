//! Operation payloads carried inside QRPC requests.

use rover_wire::{Decoder, Encoder, Wire, WireError};

/// Payload of an `Export` QRPC: the method invocation to replay at the
/// home server, plus the per-session write sequence (0 = unordered).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExportPayload {
    /// RDO method to re-execute against the server's copy.
    pub method: String,
    /// Method arguments (string forms).
    pub args: Vec<String>,
    /// Per-session write order (Monotonic Writes / Writes-Follow-Reads);
    /// zero when the session does not request ordered writes.
    pub session_seq: u64,
}

impl Wire for ExportPayload {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.method);
        enc.put_seq(&self.args, |e, a| e.put_str(a));
        enc.put_u64(self.session_seq);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ExportPayload {
            method: dec.get_str()?,
            args: dec.get_seq(|d| d.get_str())?,
            session_seq: dec.get_u64()?,
        })
    }
}

/// Payload of an `Invoke` QRPC: run a method at the server without
/// importing the object (function shipping).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvokePayload {
    /// Method name.
    pub method: String,
    /// Method arguments (string forms).
    pub args: Vec<String>,
}

impl Wire for InvokePayload {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.method);
        enc.put_seq(&self.args, |e, a| e.put_str(a));
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(InvokePayload {
            method: dec.get_str()?,
            args: dec.get_seq(|d| d.get_str())?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_roundtrip() {
        let p = ExportPayload {
            method: "append".into(),
            args: vec!["a b".into(), "".into(), "c".into()],
            session_seq: 7,
        };
        assert_eq!(ExportPayload::from_bytes(&p.to_bytes()).unwrap(), p);
    }

    #[test]
    fn invoke_roundtrip() {
        let p = InvokePayload {
            method: "filter".into(),
            args: vec!["alice*".into()],
        };
        assert_eq!(InvokePayload::from_bytes(&p.to_bytes()).unwrap(), p);
    }
}
