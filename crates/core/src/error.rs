//! Toolkit-level errors.

use std::fmt;

/// Errors surfaced by the Rover toolkit.
#[derive(Clone, Debug, PartialEq)]
pub enum RoverError {
    /// A URN failed validation.
    BadUrn(String),
    /// The named object is not present (cache or store, per context).
    NoSuchObject(String),
    /// The object has no such method.
    NoSuchMethod(String),
    /// RDO execution failed (script error, budget exhaustion).
    Exec(String),
    /// The referenced session does not exist.
    NoSuchSession(u64),
    /// A local invocation attempted to mutate the object; mutations must
    /// go through `export` so they reach the home server.
    LocalMutation(String),
    /// The stable log failed.
    Log(String),
    /// A wire-format error (corrupt message).
    Wire(String),
    /// RDO method code never parsed: the script text itself was
    /// malformed (hostile or corrupt input), as opposed to a script
    /// that ran and failed ([`RoverError::Exec`]). Hosts count these
    /// separately.
    ScriptParse(String),
    /// The operation requires a cached copy that is not present.
    NotCached(String),
}

impl fmt::Display for RoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoverError::BadUrn(m) => write!(f, "bad URN: {m}"),
            RoverError::NoSuchObject(u) => write!(f, "no such object: {u}"),
            RoverError::NoSuchMethod(m) => write!(f, "no such method: {m}"),
            RoverError::Exec(m) => write!(f, "RDO execution failed: {m}"),
            RoverError::NoSuchSession(s) => write!(f, "no such session: {s}"),
            RoverError::LocalMutation(u) => {
                write!(f, "local invocation mutated {u}; use export for updates")
            }
            RoverError::Log(m) => write!(f, "stable log failure: {m}"),
            RoverError::Wire(m) => write!(f, "wire error: {m}"),
            RoverError::ScriptParse(m) => write!(f, "script parse rejected: {m}"),
            RoverError::NotCached(u) => write!(f, "object not in cache: {u}"),
        }
    }
}

impl std::error::Error for RoverError {}

impl From<rover_log::LogError> for RoverError {
    fn from(e: rover_log::LogError) -> Self {
        RoverError::Log(e.to_string())
    }
}

impl From<rover_wire::WireError> for RoverError {
    fn from(e: rover_wire::WireError) -> Self {
        RoverError::Wire(e.to_string())
    }
}
