//! The Rover toolkit: relocatable dynamic objects and queued remote
//! procedure calls for mobile information access.
//!
//! This crate is the paper's primary contribution — a client/server
//! distributed object system in which:
//!
//! - applications **import** objects from their home servers into a
//!   client-side cache, mutate them locally, and **export** the
//!   operations back (optimistic, primary-copy replication with
//!   server-side conflict detection and type-specific resolution);
//! - every remote operation is a **queued RPC**: written to a stable
//!   log, scheduled by priority over whatever link is up, delivered on
//!   reconnection, answered through a **promise**;
//! - objects are **RDOs** — data plus method code executed by a budgeted
//!   interpreter on either side of the link, so computation can move to
//!   where it is cheapest (`invoke_local` on the cached copy,
//!   `invoke_remote` to ship the call to the server);
//! - applications observe connectivity and consistency transitions
//!   through **notification events**, and scope their consistency
//!   demands with Bayou-style **session guarantees** over tentative
//!   data.
//!
//! The moving parts live in focused modules: the [`Client`] access
//! manager, the home [`Server`] (RDO execution + resolvers), the
//! [`Cache`], [`Session`] guarantees, [`RoverObject`] RDOs, the
//! [`Resolver`] registry, and [`Promise`]s.
//!
//! # Examples
//!
//! ```
//! use rover_core::{Client, ClientConfig, Guarantees, RoverObject, Server, ServerConfig, Urn};
//! use rover_net::{LinkSpec, Net};
//! use rover_sim::Sim;
//! use rover_wire::{HostId, Priority};
//!
//! let mut sim = Sim::new(7);
//! let net = Net::new();
//! let (ch, sh) = (HostId(1), HostId(2));
//! let link = net.add_link(LinkSpec::WAVELAN_2M, ch, sh);
//!
//! let server = Server::new(&net, ServerConfig::workstation(sh));
//! server.borrow_mut().add_route(ch, link);
//! server.borrow_mut().put_object(
//!     RoverObject::new(Urn::parse("urn:rover:demo/hello").unwrap(), "demo")
//!         .with_field("msg", "hello mobile world"),
//! );
//!
//! let client = Client::new(&mut sim, &net, ClientConfig::thinkpad(ch, sh), vec![link]);
//! let session = Client::create_session(&client, Guarantees::ALL, true);
//! let p = Client::import(
//!     &client, &mut sim,
//!     &Urn::parse("urn:rover:demo/hello").unwrap(),
//!     session, Priority::FOREGROUND,
//! ).unwrap();
//! sim.run();
//! assert_eq!(p.poll().unwrap().object.unwrap().field("msg"), Some("hello mobile world"));
//! ```

#![deny(unsafe_code)]

mod cache;
mod checkpoint;
mod client;
mod config;
mod error;
mod events;
mod hotset;
mod object;
mod payload;
mod promise;
mod rebalance;
mod resolve;
mod server;
mod session;
mod shard;
mod urn;

pub use cache::{Cache, CacheEntry};
pub use checkpoint::{decode_checkpoint, encode_checkpoint, CheckpointImage};
pub use client::{Client, ClientRef, ExportHandle, Placement, PlacementHints, PollGuard};
pub use config::{ClientConfig, CommitPolicy, LogPolicy, ServerConfig, StorageModel};
pub use error::RoverError;
pub use events::{ClientEvent, ServerEvent};
pub use hotset::HotSet;
pub use object::{collection_object, MethodRun, RoverObject};
pub use payload::{ExportPayload, InvokePayload};
pub use promise::{Outcome, Promise};
pub use rebalance::{Migration, Rebalancer};
pub use resolve::{ReexecuteResolver, RejectResolver, Resolution, Resolver, ScriptResolver};
pub use server::{CrashPoint, Server, ServerRef};
pub use session::{Guarantees, Session};
pub use shard::{ShardMap, ShardMapError};
pub use urn::Urn;

pub use rover_wire::{HostId, OpStatus, Priority, RequestId, SessionId, Version};
