//! Application-level integration tests: the mail reader, calendar, and
//! browser proxy driving the real toolkit over the simulated network.

use std::rc::Rc;

use rover_apps::calendar::{calendar_object, Calendar};
use rover_apps::mail::{MailReader, MailboxGen};
use rover_apps::web::{run_session, BrowseMode, BrowserProxy, WebGen};
use rover_core::{
    Client, ClientConfig, ClientRef, Guarantees, OpStatus, ScriptResolver, Server, ServerConfig,
    ServerRef,
};
use rover_net::{LinkId, LinkSpec, Net};
use rover_sim::{Sim, SimDuration};
use rover_wire::HostId;

const CLIENT: HostId = HostId(1);
const CLIENT2: HostId = HostId(3);
const SERVER: HostId = HostId(2);

fn rig(spec: LinkSpec) -> (Sim, Net, LinkId, ServerRef, ClientRef) {
    let mut sim = Sim::new(11);
    let net = Net::new();
    let link = net.add_link(spec, CLIENT, SERVER);
    let server = Server::new(&net, ServerConfig::workstation(SERVER));
    server.borrow_mut().add_route(CLIENT, link);
    for ty in ["mailfolder", "mailmsg", "spool", "calendar", "webpage"] {
        server
            .borrow_mut()
            .register_resolver(ty, Box::new(ScriptResolver::default()));
    }
    let client = Client::new(
        &mut sim,
        &net,
        ClientConfig::thinkpad(CLIENT, SERVER),
        vec![link],
    );
    (sim, net, link, server, client)
}

// ----------------------------------------------------------------------
// Mail.

#[test]
fn mail_open_read_and_summaries() {
    let (mut sim, _net, _link, server, client) = rig(LinkSpec::WAVELAN_2M);
    let ids = MailboxGen {
        user: "alice".into(),
        folder: "inbox".into(),
        count: 20,
        seed: 3,
    }
    .populate(&server);
    let reader = MailReader::new(&client, "alice", Guarantees::ALL);

    let p = reader.open_folder(&mut sim, "inbox").unwrap();
    sim.run();
    assert_eq!(p.poll().unwrap().status, OpStatus::Ok);

    // Local summaries on the cached folder.
    let s = reader.summaries_local(&mut sim, "inbox").unwrap();
    sim.run();
    let list = s.poll().unwrap().value.as_list().unwrap();
    assert_eq!(list.len(), 20);

    // Read a message end-to-end.
    let m = reader.read_message(&mut sim, "inbox", &ids[7]).unwrap();
    sim.run();
    let obj = m.poll().unwrap().object.unwrap();
    assert!(obj.field("body").unwrap().len() >= 400);
    assert!(obj.field("from").is_some());
}

#[test]
fn mail_compose_while_disconnected_drains_later() {
    let (mut sim, net, link, server, client) = rig(LinkSpec::CSLIP_14_4);
    MailboxGen {
        user: "alice".into(),
        folder: "inbox".into(),
        count: 2,
        seed: 3,
    }
    .populate(&server);
    let reader = MailReader::new(&client, "alice", Guarantees::ALL);

    // Import the outbox while connected (exports need a cached copy).
    let p = Client::import(
        &client,
        &mut sim,
        &reader.outbox_urn(),
        reader.session,
        rover_wire::Priority::NORMAL,
    )
    .unwrap();
    sim.run();
    assert!(p.is_ready());

    net.set_up(&mut sim, link, false);
    let mut handles = Vec::new();
    for i in 0..5 {
        let h = reader
            .compose(
                &mut sim,
                &format!("out{i}"),
                "status report",
                "all quiet on the 2.4k link",
            )
            .unwrap();
        handles.push(h);
        sim.run_for(SimDuration::from_secs(1));
    }
    assert!(handles.iter().all(|h| h.tentative.is_ready()));
    assert!(handles.iter().all(|h| !h.committed.is_ready()));

    net.set_up(&mut sim, link, true);
    sim.run();
    assert!(handles.iter().all(|h| h.committed.is_ready()));
    let sv = server.borrow();
    let outbox = sv.get_object(&reader.outbox_urn()).unwrap();
    assert_eq!(
        outbox
            .fields
            .keys()
            .filter(|k| k.starts_with("msg"))
            .count(),
        5
    );
}

#[test]
fn mail_two_readers_merge_deletes() {
    // Alice deletes different messages from two devices; the folder's
    // commutative del_msg merges both.
    let mut sim = Sim::new(5);
    let net = Net::new();
    let l1 = net.add_link(LinkSpec::ETHERNET_10M, CLIENT, SERVER);
    let l2 = net.add_link(LinkSpec::ETHERNET_10M, CLIENT2, SERVER);
    let server = Server::new(&net, ServerConfig::workstation(SERVER));
    server.borrow_mut().add_route(CLIENT, l1);
    server.borrow_mut().add_route(CLIENT2, l2);
    server
        .borrow_mut()
        .register_resolver("mailfolder", Box::new(ScriptResolver::default()));
    let ids = MailboxGen {
        user: "alice".into(),
        folder: "inbox".into(),
        count: 10,
        seed: 9,
    }
    .populate(&server);

    let c1 = Client::new(
        &mut sim,
        &net,
        ClientConfig::thinkpad(CLIENT, SERVER),
        vec![l1],
    );
    let c2 = Client::new(
        &mut sim,
        &net,
        ClientConfig::thinkpad(CLIENT2, SERVER),
        vec![l2],
    );
    let laptop = MailReader::new(&c1, "alice", Guarantees::ALL);
    let desktop = MailReader::new(&c2, "alice", Guarantees::ALL);
    for (r, _) in [(&laptop, 0), (&desktop, 1)] {
        let p = r.open_folder(&mut sim, "inbox").unwrap();
        sim.run();
        assert!(p.is_ready());
    }

    // Both delete from the same base version.
    let h1 = laptop.delete_message(&mut sim, "inbox", &ids[1]).unwrap();
    let h2 = desktop.delete_message(&mut sim, "inbox", &ids[5]).unwrap();
    sim.run();
    let s1 = h1.committed.poll().unwrap().status;
    let s2 = h2.committed.poll().unwrap().status;
    assert!(s1 == OpStatus::Ok || s1 == OpStatus::Resolved);
    assert!(s2 == OpStatus::Ok || s2 == OpStatus::Resolved);

    let sv = server.borrow();
    let folder = sv.get_object(&laptop.folder_urn("inbox")).unwrap();
    let ids_field = folder.field("ids").unwrap();
    assert!(!ids_field.contains(&ids[1]));
    assert!(!ids_field.contains(&ids[5]));
    assert_eq!(rover_script::parse_list(ids_field).unwrap().len(), 8);
}

#[test]
fn mail_filter_ships_function_not_data() {
    let (mut sim, _net, _link, server, client) = rig(LinkSpec::CSLIP_2_4);
    MailboxGen {
        user: "alice".into(),
        folder: "inbox".into(),
        count: 40,
        seed: 21,
    }
    .populate(&server);
    let reader = MailReader::new(&client, "alice", Guarantees::NONE);

    let before = sim.stats.counter("net.sent_bytes");
    let p = reader.filter_remote(&mut sim, "inbox", "bob").unwrap();
    sim.run();
    let filter_bytes = sim.stats.counter("net.sent_bytes") - before;
    let matches = p.poll().unwrap().value.as_list().unwrap();
    assert!(!matches.is_empty());

    // Fetching the whole folder would move far more bytes.
    let before = sim.stats.counter("net.sent_bytes");
    let p = reader.open_folder(&mut sim, "inbox").unwrap();
    sim.run();
    assert!(p.is_ready());
    let folder_bytes = sim.stats.counter("net.sent_bytes") - before;
    assert!(
        folder_bytes > filter_bytes * 3,
        "folder fetch {folder_bytes}B vs shipped filter {filter_bytes}B"
    );
}

// ----------------------------------------------------------------------
// Calendar.

#[test]
fn calendar_disconnected_booking_and_slot_conflict() {
    let mut sim = Sim::new(5);
    let net = Net::new();
    let l1 = net.add_link(LinkSpec::WAVELAN_2M, CLIENT, SERVER);
    let l2 = net.add_link(LinkSpec::WAVELAN_2M, CLIENT2, SERVER);
    let server = Server::new(&net, ServerConfig::workstation(SERVER));
    server.borrow_mut().add_route(CLIENT, l1);
    server.borrow_mut().add_route(CLIENT2, l2);
    server
        .borrow_mut()
        .register_resolver("calendar", Box::new(ScriptResolver::default()));
    server.borrow_mut().put_object(calendar_object("team"));

    let c1 = Client::new(
        &mut sim,
        &net,
        ClientConfig::thinkpad(CLIENT, SERVER),
        vec![l1],
    );
    let c2 = Client::new(
        &mut sim,
        &net,
        ClientConfig::thinkpad(CLIENT2, SERVER),
        vec![l2],
    );
    let alice = Calendar::new(&c1, "team", "alice", Guarantees::ALL);
    let bob = Calendar::new(&c2, "team", "bob", Guarantees::ALL);
    for cal in [&alice, &bob] {
        let p = cal.open(&mut sim).unwrap();
        sim.run();
        assert!(p.is_ready());
    }

    // Both go offline and book: disjoint slots merge, same slot
    // conflicts for exactly one of them.
    net.set_up(&mut sim, l1, false);
    net.set_up(&mut sim, l2, false);
    let a9 = alice.book(&mut sim, 9, "design review").unwrap();
    let a11 = alice.book(&mut sim, 11, "lunch").unwrap();
    let b9 = bob.book(&mut sim, 9, "standup").unwrap();
    let b14 = bob.book(&mut sim, 14, "1:1").unwrap();
    sim.run_for(SimDuration::from_secs(30));

    // Tentative agenda shows each user their own bookings.
    let ag = alice.agenda_local(&mut sim).unwrap();
    sim.run_for(SimDuration::from_secs(1));
    assert_eq!(ag.poll().unwrap().value.as_list().unwrap().len(), 2);

    net.set_up(&mut sim, l1, true);
    net.set_up(&mut sim, l2, true);
    sim.run();

    let statuses = [&a9, &a11, &b9, &b14].map(|h| h.committed.poll().unwrap().status);
    // Slot 9: one side wins, the other is reflected as a conflict.
    let conflicts = statuses
        .iter()
        .filter(|s| **s == OpStatus::Conflict)
        .count();
    assert_eq!(
        conflicts, 1,
        "exactly one slot-9 booking must lose: {statuses:?}"
    );

    let sv = server.borrow();
    let cal = sv.get_object(&alice.urn()).unwrap();
    assert!(cal.field("ev9").is_some());
    assert!(cal.field("ev11").unwrap().contains("alice"));
    assert!(cal.field("ev14").unwrap().contains("bob"));
}

#[test]
fn calendar_cancel_roundtrip() {
    let (mut sim, _net, _link, server, client) = rig(LinkSpec::ETHERNET_10M);
    server.borrow_mut().put_object(calendar_object("solo"));
    let cal = Calendar::new(&client, "solo", "alice", Guarantees::ALL);
    let p = cal.open(&mut sim).unwrap();
    sim.run();
    assert!(p.is_ready());

    let b = cal.book(&mut sim, 10, "dentist").unwrap();
    sim.run();
    assert_eq!(b.committed.poll().unwrap().status, OpStatus::Ok);
    let l = cal.lookup_local(&mut sim, 10).unwrap();
    sim.run();
    assert!(l.poll().unwrap().value.as_str().contains("dentist"));

    let c = cal.cancel(&mut sim, 10).unwrap();
    sim.run();
    assert_eq!(c.committed.poll().unwrap().status, OpStatus::Ok);
    assert!(server
        .borrow()
        .get_object(&cal.urn())
        .unwrap()
        .field("ev10")
        .is_none());
}

// ----------------------------------------------------------------------
// Web proxy.

#[test]
fn web_prefetch_turns_clicks_into_cache_hits() {
    let (mut sim, _net, _link, server, client) = rig(LinkSpec::CSLIP_14_4);
    WebGen {
        pages: 30,
        seed: 13,
    }
    .populate(&server);
    let proxy = Rc::new(BrowserProxy::new(&client, true));

    // First click: fetched over the modem, links prefetched after.
    let p = proxy.request(&mut sim, "p0").unwrap();
    sim.run();
    let first = p.poll().unwrap();
    assert!(!first.from_cache);
    let links = rover_apps::web::page_links(first.object.as_ref().unwrap());
    assert!(!links.is_empty());

    // After the prefetch queue drains, clicking a linked page hits the
    // cache.
    let p2 = proxy.request(&mut sim, &links[0]).unwrap();
    sim.run_for(SimDuration::from_millis(10));
    assert!(p2.is_ready(), "linked page should be cached by prefetch");
    assert!(p2.poll().unwrap().from_cache);
}

#[test]
fn web_clickahead_beats_blocking_on_slow_links() {
    let run = |mode: BrowseMode| -> (f64, u64) {
        let (mut sim, _net, _link, server, client) = rig(LinkSpec::CSLIP_14_4);
        WebGen {
            pages: 40,
            seed: 17,
        }
        .populate(&server);
        let proxy = Rc::new(BrowserProxy::new(&client, false));
        let stats = run_session(
            proxy,
            &mut sim,
            "p0",
            12,
            SimDuration::from_secs(5),
            mode,
            99,
        );
        sim.run();
        let st = stats.borrow();
        assert_eq!(st.stalls_ms.len(), 12, "all pages arrived");
        let total = st.finished_at.expect("session finished").as_secs_f64();
        (total, st.stalls_ms.iter().sum::<f64>() as u64)
    };

    let (blocking_total, _) = run(BrowseMode::Blocking);
    let (clickahead_total, _) = run(BrowseMode::ClickAhead);
    assert!(
        clickahead_total < blocking_total,
        "click-ahead session ({clickahead_total:.1}s) should finish before blocking \
         ({blocking_total:.1}s)"
    );
}

#[test]
fn web_disconnected_browsing_from_cache() {
    let (mut sim, net, link, server, client) = rig(LinkSpec::WAVELAN_2M);
    WebGen {
        pages: 10,
        seed: 23,
    }
    .populate(&server);
    let proxy = Rc::new(BrowserProxy::new(&client, true));

    let p = proxy.request(&mut sim, "p3").unwrap();
    sim.run();
    let links = rover_apps::web::page_links(p.poll().unwrap().object.as_ref().unwrap());

    net.set_up(&mut sim, link, false);
    // Cached page: instant. Prefetched link: instant. Uncached page:
    // queued, unresolved while disconnected.
    let hit = proxy.request(&mut sim, "p3").unwrap();
    let linked = proxy.request(&mut sim, &links[0]).unwrap();
    sim.run_for(SimDuration::from_secs(5));
    assert!(hit.poll().unwrap().from_cache);
    assert!(linked.is_ready());

    let all: std::collections::HashSet<String> =
        links.iter().cloned().chain(["p3".to_owned()]).collect();
    let uncached = (0..10).map(|i| format!("p{i}")).find(|p| !all.contains(p));
    if let Some(page) = uncached {
        let miss = proxy.request(&mut sim, &page).unwrap();
        sim.run_for(SimDuration::from_secs(60));
        assert!(!miss.is_ready(), "uncached page must wait for reconnection");
        net.set_up(&mut sim, link, true);
        sim.run();
        assert_eq!(miss.poll().unwrap().status, OpStatus::Ok);
    }
}

#[test]
fn mail_hoard_enables_full_offline_folder() {
    let (mut sim, net, link, server, client) = rig(LinkSpec::WAVELAN_2M);
    let ids = MailboxGen {
        user: "alice".into(),
        folder: "inbox".into(),
        count: 15,
        seed: 8,
    }
    .populate(&server);
    let reader = MailReader::new(&client, "alice", Guarantees::ALL);

    // One call hoards the folder index and all 15 bodies.
    let p = reader.hoard(&mut sim, "inbox").unwrap();
    sim.run();
    assert!(p.is_ready());

    net.set_up(&mut sim, link, false);
    // Folder listing and every message read from cache, offline.
    let f = reader.open_folder(&mut sim, "inbox").unwrap();
    sim.run_for(SimDuration::from_millis(100));
    assert!(f.poll().unwrap().from_cache);
    for id in &ids {
        let m = reader.read_message(&mut sim, "inbox", id).unwrap();
        sim.run_for(SimDuration::from_millis(50));
        assert!(m.poll().unwrap().from_cache, "{id} not hoarded");
    }
}

#[test]
fn web_prefetch_threshold_gates_prefetching() {
    // On a fast link, stalls are below the threshold → no prefetching;
    // on a modem the same threshold lets prefetch kick in.
    let prefetches = |spec: LinkSpec| -> u64 {
        let (mut sim, _net, _link, server, client) = rig(spec);
        WebGen {
            pages: 20,
            seed: 31,
        }
        .populate(&server);
        let mut proxy = BrowserProxy::new(&client, true);
        proxy.prefetch_threshold = SimDuration::from_millis(500);
        let p = proxy.request(&mut sim, "p0").unwrap();
        sim.run();
        assert!(p.is_ready());
        sim.stats.counter("client.prefetches")
    };

    assert_eq!(
        prefetches(LinkSpec::ETHERNET_10M),
        0,
        "fast link: below threshold"
    );
    assert!(
        prefetches(LinkSpec::CSLIP_14_4) > 0,
        "modem: above threshold"
    );
}

#[test]
fn web_session_survives_flaky_modem() {
    // A browsing session across repeated disconnections: every clicked
    // page eventually arrives (click-ahead + QRPC retransmission).
    let (mut sim, net, link, server, client) = rig(LinkSpec::CSLIP_14_4);
    WebGen {
        pages: 25,
        seed: 37,
    }
    .populate(&server);
    let proxy = Rc::new(BrowserProxy::new(&client, false));
    // 40 s up / 20 s down, repeatedly.
    net.schedule_pattern(
        &mut sim,
        link,
        SimDuration::from_secs(40),
        SimDuration::from_secs(20),
        40,
    );
    let stats = run_session(
        proxy,
        &mut sim,
        "p0",
        10,
        SimDuration::from_secs(25),
        BrowseMode::ClickAhead,
        3,
    );
    sim.run_until(sim.now() + rover_sim::SimDuration::from_secs(3600));
    let st = stats.borrow();
    assert_eq!(
        st.stalls_ms.len(),
        10,
        "every page arrived despite the flapping"
    );
    assert!(st.finished_at.is_some());
}
