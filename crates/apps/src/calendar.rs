//! The Rover calendar (the paper's Ical port), headless.
//!
//! A calendar is one RDO whose fields are booked slots. Bookings made
//! while disconnected apply tentatively and commit on reconnection; the
//! object's own `resolve` proc implements the Bayou-style policy the
//! paper borrows — a conflicting booking is accepted iff its slot is
//! still free, otherwise it is reflected back to the user.

use rover_core::{
    Client, ClientRef, ExportHandle, Guarantees, Promise, RoverError, RoverObject, Urn,
};
use rover_sim::Sim;
use rover_wire::{Priority, SessionId};

/// Method-definition script for calendar objects.
pub const CALENDAR_CODE: &str = r#"
proc book {slot owner title} {
    if {[rover::has ev$slot]} {error "slot $slot taken"}
    rover::set ev$slot [list $owner $title]
}
proc cancel {slot owner} {
    if {![rover::has ev$slot]} {return}
    set e [rover::get ev$slot]
    if {[lindex $e 0] ne $owner} {error "not the owner"}
    rover::del ev$slot
}
proc lookup {slot} {rover::get ev$slot {}}
proc busy_count {} {llength [rover::keys ev*]}
proc agenda {} {
    set out {}
    foreach k [rover::keys ev*] {
        lappend out [concat [list [string range $k 2 end]] [rover::get $k]]
    }
    return $out
}
proc resolve {method args_list base} {
    if {$method eq "book"} {
        set slot [lindex $args_list 0]
        if {![rover::has ev$slot]} {return accept}
        return reject
    }
    if {$method eq "cancel"} {return accept}
    return reject
}
"#;

/// Builds an empty calendar object named `urn:rover:cal/<name>`.
pub fn calendar_object(name: &str) -> RoverObject {
    RoverObject::new(
        Urn::new("cal", name).expect("valid calendar urn"),
        "calendar",
    )
    .with_code(CALENDAR_CODE)
}

/// A headless calendar client (one replica of the shared calendar).
pub struct Calendar {
    /// Underlying toolkit client.
    pub client: ClientRef,
    /// This replica's session.
    pub session: SessionId,
    name: String,
    owner: String,
}

impl Calendar {
    /// Opens `owner`'s view of the shared calendar `name`.
    pub fn new(client: &ClientRef, name: &str, owner: &str, guarantees: Guarantees) -> Calendar {
        let session = Client::create_session(client, guarantees, true);
        Calendar {
            client: client.clone(),
            session,
            name: name.to_owned(),
            owner: owner.to_owned(),
        }
    }

    /// The calendar object's URN.
    pub fn urn(&self) -> Urn {
        Urn::new("cal", &self.name).expect("valid calendar urn")
    }

    /// Imports the calendar into the local cache.
    pub fn open(&self, sim: &mut Sim) -> Result<Promise, RoverError> {
        Client::import(
            &self.client,
            sim,
            &self.urn(),
            self.session,
            Priority::FOREGROUND,
        )
    }

    /// Books a slot: tentative locally, queued to the home server.
    pub fn book(&self, sim: &mut Sim, slot: u32, title: &str) -> Result<ExportHandle, RoverError> {
        Client::export(
            &self.client,
            sim,
            &self.urn(),
            self.session,
            "book",
            &[&slot.to_string(), &self.owner, title],
            Priority::NORMAL,
        )
    }

    /// Cancels one of this owner's bookings.
    pub fn cancel(&self, sim: &mut Sim, slot: u32) -> Result<ExportHandle, RoverError> {
        Client::export(
            &self.client,
            sim,
            &self.urn(),
            self.session,
            "cancel",
            &[&slot.to_string(), &self.owner],
            Priority::NORMAL,
        )
    }

    /// Reads the agenda from the cached copy (tentative entries
    /// included — the user sees their own unsynced bookings).
    pub fn agenda_local(&self, sim: &mut Sim) -> Result<Promise, RoverError> {
        Client::invoke_local(&self.client, sim, &self.urn(), "agenda", &[])
    }

    /// Looks a slot up on the cached copy.
    pub fn lookup_local(&self, sim: &mut Sim, slot: u32) -> Result<Promise, RoverError> {
        Client::invoke_local(
            &self.client,
            sim,
            &self.urn(),
            "lookup",
            &[&slot.to_string()],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rover_script::{Budget, Value};

    fn cal() -> RoverObject {
        calendar_object("test")
    }

    fn run(
        obj: &mut RoverObject,
        method: &str,
        args: &[&str],
    ) -> Result<Value, rover_core::RoverError> {
        let vals: Vec<Value> = args.iter().map(Value::str).collect();
        obj.run_method(method, &vals, Budget::default())
            .map(|r| r.result)
    }

    #[test]
    fn book_lookup_cancel_roundtrip() {
        let mut c = cal();
        run(&mut c, "book", &["9", "alice", "standup"]).unwrap();
        let e = run(&mut c, "lookup", &["9"]).unwrap();
        assert!(e.as_str().contains("alice"));
        run(&mut c, "cancel", &["9", "alice"]).unwrap();
        assert_eq!(run(&mut c, "lookup", &["9"]).unwrap(), Value::empty());
    }

    #[test]
    fn double_booking_errors_locally() {
        let mut c = cal();
        run(&mut c, "book", &["9", "alice", "a"]).unwrap();
        let err = run(&mut c, "book", &["9", "bob", "b"]).unwrap_err();
        assert!(err.to_string().contains("taken"));
        // The failed booking rolled back: alice still owns the slot.
        assert!(c.field("ev9").unwrap().contains("alice"));
    }

    #[test]
    fn cancel_by_non_owner_errors() {
        let mut c = cal();
        run(&mut c, "book", &["9", "alice", "a"]).unwrap();
        let err = run(&mut c, "cancel", &["9", "bob"]).unwrap_err();
        assert!(err.to_string().contains("owner"));
        assert!(c.field("ev9").is_some());
    }

    #[test]
    fn agenda_and_busy_count() {
        let mut c = cal();
        for (slot, who) in [("9", "alice"), ("14", "bob"), ("16", "carol")] {
            run(&mut c, "book", &[slot, who, "mtg"]).unwrap();
        }
        assert_eq!(run(&mut c, "busy_count", &[]).unwrap(), Value::Int(3));
        let agenda = run(&mut c, "agenda", &[]).unwrap().as_list().unwrap();
        assert_eq!(agenda.len(), 3);
        // Each agenda row is {slot owner title}.
        let row = agenda[0].as_list().unwrap();
        assert_eq!(row.len(), 3);
    }

    #[test]
    fn resolver_accepts_free_slot_rejects_taken() {
        let mut c = cal();
        run(&mut c, "book", &["9", "alice", "a"]).unwrap();
        assert_eq!(
            run(&mut c, "resolve", &["book", "9 bob b", "1"])
                .unwrap()
                .as_str(),
            "reject"
        );
        assert_eq!(
            run(&mut c, "resolve", &["book", "10 bob b", "1"])
                .unwrap()
                .as_str(),
            "accept"
        );
        assert_eq!(
            run(&mut c, "resolve", &["cancel", "9 alice", "1"])
                .unwrap()
                .as_str(),
            "accept"
        );
        assert_eq!(
            run(&mut c, "resolve", &["nuke_all", "", "1"])
                .unwrap()
                .as_str(),
            "reject"
        );
    }
}
