//! The Rover mail reader (the paper's Exmh port), headless.
//!
//! Folders and messages are RDOs at a mail home server:
//!
//! - a *folder* object holds the message-id list and per-message summary
//!   lines, with commutative `add_msg`/`del_msg` methods (its `resolve`
//!   proc accepts them, so two disconnected readers merge cleanly);
//! - each *message* is its own object, fetched on demand and prefetched
//!   ahead of disconnection;
//! - an *outbox* spool object receives composed messages by exported
//!   `deposit` operations — composing while disconnected queues the send
//!   exactly like the paper's QRPC-over-SMTP mail delivery.

use rover_core::{
    collection_object, Client, ClientRef, ExportHandle, Guarantees, Promise, RoverError,
    RoverObject, ServerRef, Urn,
};
use rover_script::{format_list, Value};
use rover_sim::Sim;
use rover_wire::{Priority, SessionId};

use crate::workload::TextGen;

/// Method-definition script for folder objects.
pub const FOLDER_CODE: &str = r#"
proc add_msg {id from size subject} {
    set ids [rover::get ids {}]
    lappend ids $id
    rover::set ids $ids
    rover::set sum$id [list $from $size $subject]
}
proc del_msg {id} {
    set out {}
    foreach m [rover::get ids {}] {
        if {$m ne $id} {lappend out $m}
    }
    rover::set ids $out
    rover::del sum$id
}
proc count {} {llength [rover::get ids {}]}
proc summaries {} {
    set out {}
    foreach m [rover::get ids {}] {
        lappend out [concat [list $m] [rover::get sum$m {}]]
    }
    return $out
}
proc filter_from {who} {
    set out {}
    foreach m [rover::get ids {}] {
        set s [rover::get sum$m {}]
        if {[string match $who [lindex $s 0]]} {lappend out $m}
    }
    return $out
}
proc resolve {method args_list base} {
    if {$method eq "add_msg" || $method eq "del_msg"} {return accept}
    return reject
}
"#;

/// Method-definition script for the outbox spool.
pub const SPOOL_CODE: &str = r#"
proc deposit {id from subject body} {
    rover::set msg$id [list $from $subject $body]
}
proc spooled {} {llength [rover::keys msg*]}
proc resolve {method args_list base} {
    if {$method eq "deposit"} {return accept}
    return reject
}
"#;

/// The headless mail reader.
pub struct MailReader {
    /// Underlying toolkit client.
    pub client: ClientRef,
    /// This reader's session.
    pub session: SessionId,
    user: String,
}

impl MailReader {
    /// Creates a reader for `user`, opening a session with the given
    /// guarantees (tentative data accepted — a mail UI shows queued
    /// sends immediately).
    pub fn new(client: &ClientRef, user: &str, guarantees: Guarantees) -> MailReader {
        let session = Client::create_session(client, guarantees, true);
        MailReader {
            client: client.clone(),
            session,
            user: user.to_owned(),
        }
    }

    /// URN of one of this user's folders.
    pub fn folder_urn(&self, folder: &str) -> Urn {
        Urn::new("mail", &format!("{}/{folder}", self.user)).expect("valid folder urn")
    }

    /// URN of a message within a folder.
    pub fn msg_urn(&self, folder: &str, id: &str) -> Urn {
        Urn::new("mail", &format!("{}/{folder}/{id}", self.user)).expect("valid msg urn")
    }

    /// URN of this user's outbox spool.
    pub fn outbox_urn(&self) -> Urn {
        Urn::new("mail", &format!("{}/outbox", self.user)).expect("valid outbox urn")
    }

    /// Imports a folder (summary lines included) at foreground priority.
    pub fn open_folder(&self, sim: &mut Sim, folder: &str) -> Result<Promise, RoverError> {
        Client::import(
            &self.client,
            sim,
            &self.folder_urn(folder),
            self.session,
            Priority::FOREGROUND,
        )
    }

    /// Imports one message for display.
    pub fn read_message(
        &self,
        sim: &mut Sim,
        folder: &str,
        id: &str,
    ) -> Result<Promise, RoverError> {
        Client::import(
            &self.client,
            sim,
            &self.msg_urn(folder, id),
            self.session,
            Priority::FOREGROUND,
        )
    }

    /// Prefetches message bodies (before an anticipated disconnection).
    pub fn prefetch_messages(&self, sim: &mut Sim, folder: &str, ids: &[String]) {
        let urns: Vec<Urn> = ids.iter().map(|id| self.msg_urn(folder, id)).collect();
        Client::prefetch(&self.client, sim, &urns, self.session);
    }

    /// URN of a folder's hoard collection (built by [`MailboxGen`]).
    pub fn hoard_urn(&self, folder: &str) -> Urn {
        Urn::new("mail", &format!("{}/{folder}/hoard", self.user)).expect("valid hoard urn")
    }

    /// Hoards a whole folder with one request: fetches the folder's
    /// collection object and prefetches every member (folder index and
    /// all message bodies) — the paper's one-click "collections of
    /// objects to be prefetched".
    pub fn hoard(&self, sim: &mut Sim, folder: &str) -> Result<Promise, RoverError> {
        Client::prefetch_collection(&self.client, sim, &self.hoard_urn(folder), self.session)
    }

    /// Lists message summaries from the cached folder copy (local RDO
    /// invocation — no network).
    pub fn summaries_local(&self, sim: &mut Sim, folder: &str) -> Result<Promise, RoverError> {
        Client::invoke_local(
            &self.client,
            sim,
            &self.folder_urn(folder),
            "summaries",
            &[],
        )
    }

    /// Filters the folder by sender *at the server* (function shipping;
    /// only matching ids cross the link).
    pub fn filter_remote(
        &self,
        sim: &mut Sim,
        folder: &str,
        who: &str,
    ) -> Result<Promise, RoverError> {
        Client::invoke_remote(
            &self.client,
            sim,
            &self.folder_urn(folder),
            self.session,
            "filter_from",
            &[who],
            Priority::FOREGROUND,
        )
    }

    /// Composes a message: deposits it in the outbox spool. Works
    /// disconnected — the deposit commits tentatively and drains later.
    pub fn compose(
        &self,
        sim: &mut Sim,
        id: &str,
        subject: &str,
        body: &str,
    ) -> Result<ExportHandle, RoverError> {
        Client::export(
            &self.client,
            sim,
            &self.outbox_urn(),
            self.session,
            "deposit",
            &[id, &self.user, subject, body],
            Priority::NORMAL,
        )
    }

    /// Deletes a message from a folder (summary line removed; the
    /// message object is left for the server's garbage collection).
    pub fn delete_message(
        &self,
        sim: &mut Sim,
        folder: &str,
        id: &str,
    ) -> Result<ExportHandle, RoverError> {
        Client::export(
            &self.client,
            sim,
            &self.folder_urn(folder),
            self.session,
            "del_msg",
            &[id],
            Priority::NORMAL,
        )
    }
}

/// Synthetic mailbox builder: populates a server with a folder, its
/// messages, and the user's outbox.
pub struct MailboxGen {
    /// Mailbox owner.
    pub user: String,
    /// Folder name.
    pub folder: String,
    /// Number of messages.
    pub count: usize,
    /// RNG seed (content is deterministic per seed).
    pub seed: u64,
}

impl MailboxGen {
    /// Builds the objects at `server`; returns the generated message
    /// ids in folder order.
    pub fn populate(&self, server: &ServerRef) -> Vec<String> {
        let mut gen = TextGen::new(self.seed);
        let mut ids = Vec::with_capacity(self.count);
        let mut folder = RoverObject::new(
            Urn::new("mail", &format!("{}/{}", self.user, self.folder)).expect("urn"),
            "mailfolder",
        )
        .with_code(FOLDER_CODE);

        let mut id_list = Vec::new();
        for i in 0..self.count {
            let id = format!("m{i:04}");
            let from = gen.user().to_owned();
            let subject = gen.title(4);
            let size = gen.mail_size();
            let body = gen.text(size);

            let msg = RoverObject::new(
                Urn::new("mail", &format!("{}/{}/{id}", self.user, self.folder)).expect("urn"),
                "mailmsg",
            )
            .with_field("from", &from)
            .with_field("subject", &subject)
            .with_field("date", &format!("1995-09-{:02}", (i % 28) + 1))
            .with_field("body", &body);
            server.borrow_mut().put_object(msg);

            let summary = format_list(&[
                Value::str(&from),
                Value::Int(size as i64),
                Value::str(&subject),
            ]);
            folder.fields.insert(format!("sum{id}"), summary);
            id_list.push(Value::str(&id));
            ids.push(id);
        }
        folder.fields.insert("ids".into(), format_list(&id_list));
        server.borrow_mut().put_object(folder);

        let outbox = RoverObject::new(
            Urn::new("mail", &format!("{}/outbox", self.user)).expect("urn"),
            "spool",
        )
        .with_code(SPOOL_CODE);
        server.borrow_mut().put_object(outbox);

        // The folder's hoard collection: folder index + every message.
        let mut members =
            vec![Urn::new("mail", &format!("{}/{}", self.user, self.folder)).expect("urn")];
        members.extend(ids.iter().map(|id| {
            Urn::new("mail", &format!("{}/{}/{id}", self.user, self.folder)).expect("urn")
        }));
        let hoard = collection_object(
            Urn::new("mail", &format!("{}/{}/hoard", self.user, self.folder)).expect("urn"),
            &members,
        );
        server.borrow_mut().put_object(hoard);
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rover_script::Budget;

    fn folder() -> RoverObject {
        RoverObject::new(Urn::new("mail", "t/inbox").unwrap(), "mailfolder").with_code(FOLDER_CODE)
    }

    fn run(obj: &mut RoverObject, method: &str, args: &[&str]) -> Value {
        let vals: Vec<Value> = args.iter().map(Value::str).collect();
        obj.run_method(method, &vals, Budget::default())
            .expect(method)
            .result
    }

    #[test]
    fn folder_add_count_and_summaries() {
        let mut f = folder();
        run(&mut f, "add_msg", &["m1", "alice", "120", "hello world"]);
        run(&mut f, "add_msg", &["m2", "bob", "80", "lunch?"]);
        assert_eq!(run(&mut f, "count", &[]), Value::Int(2));
        let sums = run(&mut f, "summaries", &[]).as_list().unwrap();
        assert_eq!(sums.len(), 2);
        let first = sums[0].as_list().unwrap();
        assert_eq!(first[0].as_str(), "m1");
        assert_eq!(first[1].as_str(), "alice");
        assert_eq!(first[3].as_str(), "hello world");
    }

    #[test]
    fn folder_delete_removes_id_and_summary() {
        let mut f = folder();
        run(&mut f, "add_msg", &["m1", "alice", "1", "a"]);
        run(&mut f, "add_msg", &["m2", "bob", "2", "b"]);
        run(&mut f, "del_msg", &["m1"]);
        assert_eq!(run(&mut f, "count", &[]), Value::Int(1));
        assert!(f.field("summ1").is_none());
        assert!(f.field("ids").unwrap().contains("m2"));
    }

    #[test]
    fn folder_filter_matches_sender_glob() {
        let mut f = folder();
        run(&mut f, "add_msg", &["m1", "alice", "1", "a"]);
        run(&mut f, "add_msg", &["m2", "bob", "2", "b"]);
        run(&mut f, "add_msg", &["m3", "alfred", "3", "c"]);
        let hits = run(&mut f, "filter_from", &["al*"]).as_list().unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn folder_resolver_accepts_commutative_ops_only() {
        let mut f = folder();
        let accept = run(&mut f, "resolve", &["add_msg", "m9 carol 5 subject", "3"]);
        assert_eq!(accept.as_str(), "accept");
        let reject = run(&mut f, "resolve", &["overwrite_all", "", "3"]);
        assert_eq!(reject.as_str(), "reject");
    }

    #[test]
    fn spool_deposit_and_count() {
        let mut s =
            RoverObject::new(Urn::new("mail", "t/outbox").unwrap(), "spool").with_code(SPOOL_CODE);
        run(&mut s, "deposit", &["o1", "alice", "subj", "body text"]);
        run(&mut s, "deposit", &["o2", "alice", "subj2", "more text"]);
        assert_eq!(run(&mut s, "spooled", &[]), Value::Int(2));
        assert!(s.field("msgo1").unwrap().contains("body text"));
    }

    #[test]
    fn mailbox_gen_is_deterministic_and_complete() {
        use rover_core::{Server, ServerConfig};
        use rover_net::Net;
        let net = Net::new();
        let s1 = Server::new(&net, ServerConfig::workstation(rover_wire::HostId(9)));
        let s2 = Server::new(&net, ServerConfig::workstation(rover_wire::HostId(9)));
        let g = |sv: &rover_core::ServerRef| {
            MailboxGen {
                user: "u".into(),
                folder: "f".into(),
                count: 12,
                seed: 4,
            }
            .populate(sv)
        };
        let ids1 = g(&s1);
        let ids2 = g(&s2);
        assert_eq!(ids1, ids2);
        assert_eq!(s1.borrow().object_count(), 12 + 3); // msgs + folder + outbox + hoard
        let f1 = s1
            .borrow()
            .get_object(&Urn::new("mail", "u/f").unwrap())
            .unwrap()
            .clone();
        let f2 = s2
            .borrow()
            .get_object(&Urn::new("mail", "u/f").unwrap())
            .unwrap()
            .clone();
        assert_eq!(f1, f2);
    }
}
