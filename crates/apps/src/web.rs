//! The Rover Web browser proxy, headless, plus a synthetic Web.
//!
//! The paper's proxy sat between an unmodified browser (Mosaic,
//! Netscape) and the Web, giving it *click-ahead* — "users click ahead
//! of the arrived data by requesting multiple new documents before
//! earlier requests have been satisfied" — plus cached documents for
//! disconnected browsing and link prefetching when the channel is slow.
//! Here the browser is a scripted user session ([`run_session`]) and
//! the Web is a generated page graph ([`WebGen`]); the proxy logic over
//! the toolkit API is the real thing.

use std::cell::RefCell;
use std::rc::Rc;

use rover_core::{Client, ClientRef, Guarantees, Promise, RoverError, RoverObject, ServerRef, Urn};
use rover_script::{format_list, parse_list, Value};
use rover_sim::{Sim, SimDuration, SimTime};
use rover_wire::{Priority, SessionId};

use crate::workload::TextGen;

/// Synthetic Web-site generator: a page graph with skewed sizes and
/// out-degrees.
pub struct WebGen {
    /// Number of pages (`p0` … `p{n-1}`).
    pub pages: usize,
    /// RNG seed.
    pub seed: u64,
}

impl WebGen {
    /// Builds the page objects at `server`.
    pub fn populate(&self, server: &ServerRef) {
        let mut gen = TextGen::new(self.seed);
        for i in 0..self.pages {
            let deg = 4 + gen.index(9);
            let links: Vec<Value> = (0..deg)
                .map(|_| Value::str(format!("p{}", gen.index(self.pages))))
                .collect();
            let size = gen.page_size();
            let obj = RoverObject::new(Self::urn(i), "webpage")
                .with_field("title", &gen.title(3))
                .with_field("links", &format_list(&links))
                .with_field("body", &gen.text(size));
            server.borrow_mut().put_object(obj);
        }
    }

    /// URN of page `i`.
    pub fn urn(i: usize) -> Urn {
        Urn::new("web", &format!("p{i}")).expect("valid page urn")
    }
}

/// The browser proxy: click-ahead requests and link prefetching over
/// the toolkit cache.
pub struct BrowserProxy {
    /// Underlying toolkit client.
    pub client: ClientRef,
    /// Browsing session.
    pub session: SessionId,
    /// Prefetch linked pages once a page arrives.
    pub prefetch_links: bool,
    /// Maximum links prefetched per arrived page (the paper's proxy
    /// prefetches selectively — flooding a modem with every link makes
    /// things worse, not better).
    pub max_prefetch: usize,
    /// Only prefetch when the page's own fetch stalled at least this
    /// long — "if the delay is above a user-specified threshold,
    /// documents that are directly accessible from the one requested
    /// are prefetched" (paper §6.3). Zero = always.
    pub prefetch_threshold: SimDuration,
}

impl BrowserProxy {
    /// Creates a proxy. `prefetch_links` enables background prefetch of
    /// the first [`BrowserProxy::max_prefetch`] (default 3) outgoing
    /// links of each fetched page.
    pub fn new(client: &ClientRef, prefetch_links: bool) -> BrowserProxy {
        let session = Client::create_session(client, Guarantees::NONE, true);
        BrowserProxy {
            client: client.clone(),
            session,
            prefetch_links,
            max_prefetch: 3,
            prefetch_threshold: SimDuration::ZERO,
        }
    }

    /// Requests a page (a user click). Returns immediately with a
    /// promise: cached pages resolve at local speed, uncached ones are
    /// queued as QRPCs — the user keeps browsing either way.
    pub fn request(&self, sim: &mut Sim, page: &str) -> Result<Promise, RoverError> {
        let urn = Urn::new("web", page)?;
        let p = Client::import(&self.client, sim, &urn, self.session, Priority::FOREGROUND)?;
        if self.prefetch_links {
            let client = self.client.clone();
            let session = self.session;
            let max = self.max_prefetch;
            let threshold = self.prefetch_threshold;
            let requested_at = sim.now();
            p.on_ready(sim, move |sim, outcome| {
                if sim.now().since(requested_at) < threshold {
                    return; // The channel is fast; prefetching buys nothing.
                }
                if let Some(obj) = &outcome.object {
                    let urns = page_links(obj)
                        .into_iter()
                        .filter_map(|l| Urn::new("web", &l).ok())
                        .filter(|u| !Client::is_cached(&client, u))
                        .take(max)
                        .collect::<Vec<_>>();
                    Client::prefetch(&client, sim, &urns, session);
                }
            });
        }
        Ok(p)
    }
}

/// Extracts a page object's outgoing links.
pub fn page_links(obj: &RoverObject) -> Vec<String> {
    obj.field("links")
        .and_then(|l| parse_list(l).ok())
        .map(|vals| vals.iter().map(|v| v.as_str().into_owned()).collect())
        .unwrap_or_default()
}

/// User model for a browsing session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BrowseMode {
    /// The user waits for each page before thinking about the next
    /// click (a conventional blocking browser).
    Blocking,
    /// The user clicks after each think time even if earlier pages have
    /// not arrived (Rover's click-ahead).
    ClickAhead,
}

/// Results of a scripted browsing session.
#[derive(Debug, Default)]
pub struct BrowseStats {
    /// Per-click stall: click instant → page available, in ms.
    pub stalls_ms: Vec<f64>,
    /// Clicks issued.
    pub clicks: usize,
    /// Session finished (all requested pages arrived).
    pub finished_at: Option<SimTime>,
}

/// Drives a scripted user over the proxy: `clicks` page loads starting
/// at `start_page`, pausing `think` between interactions, following a
/// random outgoing link of the most recently *arrived* page. Returns a
/// shared stats cell filled in as the simulation runs.
pub fn run_session(
    proxy: Rc<BrowserProxy>,
    sim: &mut Sim,
    start_page: &str,
    clicks: usize,
    think: SimDuration,
    mode: BrowseMode,
    seed: u64,
) -> Rc<RefCell<BrowseStats>> {
    let stats = Rc::new(RefCell::new(BrowseStats::default()));
    let gen = Rc::new(RefCell::new(TextGen::new(seed)));
    // The links of the most recently arrived page; clicks pick from it.
    let current_links = Rc::new(RefCell::new(vec![start_page.to_owned()]));
    let outstanding = Rc::new(RefCell::new(0usize));

    struct Ctx {
        proxy: Rc<BrowserProxy>,
        stats: Rc<RefCell<BrowseStats>>,
        gen: Rc<RefCell<TextGen>>,
        links: Rc<RefCell<Vec<String>>>,
        outstanding: Rc<RefCell<usize>>,
        think: SimDuration,
        mode: BrowseMode,
        total: usize,
    }

    fn click(ctx: Rc<Ctx>, sim: &mut Sim) {
        let page = {
            let links = ctx.links.borrow();
            let mut gen = ctx.gen.borrow_mut();
            // Users mostly follow the first few links on a page (which
            // is also what the proxy prefetches).
            let idx = if gen.chance(0.8) {
                gen.index(links.len().min(4))
            } else {
                gen.index(links.len())
            };
            links[idx].clone()
        };
        {
            let mut st = ctx.stats.borrow_mut();
            st.clicks += 1;
        }
        *ctx.outstanding.borrow_mut() += 1;
        let clicked_at = sim.now();
        let p = match ctx.proxy.request(sim, &page) {
            Ok(p) => p,
            Err(_) => return,
        };
        let ctx2 = ctx.clone();
        p.on_ready(sim, move |sim, outcome| {
            let stall = sim.now().since(clicked_at);
            {
                let mut st = ctx2.stats.borrow_mut();
                st.stalls_ms.push(stall.as_millis_f64());
            }
            *ctx2.outstanding.borrow_mut() -= 1;
            if let Some(obj) = &outcome.object {
                let links = page_links(obj);
                if !links.is_empty() {
                    *ctx2.links.borrow_mut() = links;
                }
            }
            let st = ctx2.stats.borrow();
            let done_clicking = st.clicks >= ctx2.total;
            let all_arrived = st.stalls_ms.len() >= ctx2.total;
            drop(st);
            if done_clicking {
                if all_arrived {
                    ctx2.stats.borrow_mut().finished_at = Some(sim.now());
                }
                return;
            }
            // A blocking user only thinks about the next click once the
            // page has rendered.
            if ctx2.mode == BrowseMode::Blocking {
                let ctx3 = ctx2.clone();
                sim.schedule_after(ctx3.think, move |sim| click(ctx3.clone(), sim));
            }
        });

        // A click-ahead user schedules the next click on think time
        // alone, regardless of arrivals.
        if ctx.mode == BrowseMode::ClickAhead {
            let already_done = ctx.stats.borrow().clicks >= ctx.total;
            if !already_done {
                let ctx3 = ctx.clone();
                sim.schedule_after(ctx.think, move |sim| click(ctx3.clone(), sim));
            }
        }
    }

    let ctx = Rc::new(Ctx {
        proxy,
        stats: stats.clone(),
        gen,
        links: current_links,
        outstanding,
        think,
        mode,
        total: clicks,
    });
    sim.schedule_after(SimDuration::ZERO, move |sim| click(ctx, sim));
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use rover_core::{Server, ServerConfig};
    use rover_net::Net;
    use rover_wire::HostId;

    #[test]
    fn webgen_pages_have_valid_links_and_sizes() {
        let net = Net::new();
        let server = Server::new(&net, ServerConfig::workstation(HostId(9)));
        WebGen { pages: 25, seed: 3 }.populate(&server);
        assert_eq!(server.borrow().object_count(), 25);
        for i in 0..25 {
            let sv = server.borrow();
            let page = sv.get_object(&WebGen::urn(i)).unwrap();
            let links = page_links(page);
            assert!((4..=12).contains(&links.len()), "degree {}", links.len());
            for l in &links {
                let n: usize = l[1..].parse().expect("pN link");
                assert!(n < 25);
            }
            let body = page.field("body").unwrap();
            assert!((2_000..120_000).contains(&body.len()));
        }
    }

    #[test]
    fn webgen_is_deterministic() {
        let net = Net::new();
        let s1 = Server::new(&net, ServerConfig::workstation(HostId(8)));
        let s2 = Server::new(&net, ServerConfig::workstation(HostId(8)));
        WebGen { pages: 10, seed: 5 }.populate(&s1);
        WebGen { pages: 10, seed: 5 }.populate(&s2);
        for i in 0..10 {
            assert_eq!(
                s1.borrow().get_object(&WebGen::urn(i)),
                s2.borrow().get_object(&WebGen::urn(i))
            );
        }
    }

    #[test]
    fn page_links_tolerates_missing_field() {
        let obj = RoverObject::new(Urn::new("web", "x").unwrap(), "webpage");
        assert!(page_links(&obj).is_empty());
    }
}
