//! The Rover applications: mail reader, calendar, and Web browser
//! proxy, plus the synthetic workload generators that stand in for the
//! paper's real users, mailboxes, and Web.
//!
//! The paper ported Exmh (mail) and Ical (calendar) onto the toolkit and
//! built a browser proxy that gives unmodified Web browsers click-ahead
//! and prefetching. These headless re-creations drive the *real* toolkit
//! API — import/export/invoke over QRPC — with scripted user behaviour,
//! which is exactly what the evaluation measured (fetch latency, queued
//! operation drain, conflict resolution, user-perceived stalls).

#![deny(unsafe_code)]
pub mod calendar;
pub mod mail;
pub mod web;
pub mod workload;

pub use calendar::Calendar;
pub use mail::{MailReader, MailboxGen};
pub use web::{BrowserProxy, WebGen};
