//! Deterministic synthetic-content generators shared by the
//! applications and the benchmark harness.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic text/content generator.
pub struct TextGen {
    rng: StdRng,
}

const WORDS: &[&str] = &[
    "rover",
    "mobile",
    "queued",
    "object",
    "cache",
    "import",
    "export",
    "promise",
    "toolkit",
    "network",
    "schedule",
    "tentative",
    "commit",
    "conflict",
    "resolve",
    "session",
    "log",
    "flush",
    "modem",
    "wireless",
    "ethernet",
    "laptop",
    "server",
    "client",
    "message",
    "folder",
    "meeting",
    "budget",
    "draft",
    "patch",
    "review",
    "deploy",
    "agenda",
    "minutes",
    "report",
];

impl TextGen {
    /// Creates a generator with a fixed seed.
    pub fn new(seed: u64) -> TextGen {
        TextGen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Returns a word-soup string of roughly `bytes` bytes.
    pub fn text(&mut self, bytes: usize) -> String {
        let mut out = String::with_capacity(bytes + 16);
        while out.len() < bytes {
            out.push_str(WORDS[self.rng.gen_range(0..WORDS.len())]);
            out.push(' ');
        }
        out.truncate(bytes);
        out
    }

    /// Returns a short title of `n` words.
    pub fn title(&mut self, n: usize) -> String {
        (0..n)
            .map(|_| WORDS[self.rng.gen_range(0..WORDS.len())])
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Returns one of the canned user names.
    pub fn user(&mut self) -> &'static str {
        const USERS: &[&str] = &[
            "alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi",
        ];
        USERS[self.rng.gen_range(0..USERS.len())]
    }

    /// Samples a mail-body size: mostly short text, a heavy tail of
    /// larger messages (attachments), in bytes.
    pub fn mail_size(&mut self) -> usize {
        if self.rng.gen_bool(0.85) {
            self.rng.gen_range(400..3_000)
        } else {
            self.rng.gen_range(8_000..60_000)
        }
    }

    /// Samples a Web-page size in bytes (HTML plus inlined media).
    pub fn page_size(&mut self) -> usize {
        if self.rng.gen_bool(0.7) {
            self.rng.gen_range(2_000..15_000)
        } else {
            self.rng.gen_range(20_000..120_000)
        }
    }

    /// Returns a uniformly random integer in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    /// Returns a uniformly random value in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.gen_range(lo..hi)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = TextGen::new(5);
        let mut b = TextGen::new(5);
        assert_eq!(a.text(100), b.text(100));
        assert_eq!(a.mail_size(), b.mail_size());
        let mut c = TextGen::new(6);
        assert_ne!(a.text(100), c.text(100));
    }

    #[test]
    fn text_hits_requested_size() {
        let mut g = TextGen::new(1);
        for n in [1usize, 10, 1000, 4096] {
            assert_eq!(g.text(n).len(), n);
        }
    }

    #[test]
    fn size_distributions_are_in_range() {
        let mut g = TextGen::new(2);
        for _ in 0..200 {
            let m = g.mail_size();
            assert!((400..60_000).contains(&m));
            let p = g.page_size();
            assert!((2_000..120_000).contains(&p));
        }
    }
}
